//! The streaming engines SVAQ and SVAQD (paper Algorithms 1 and 3).
//!
//! One [`OnlineEngine`] implements both: with
//! [`ParameterPolicy::Static`](crate::config::ParameterPolicy::Static) the
//! background probabilities (and thus critical values) are fixed at their
//! initial values for the whole stream — Algorithm 1, SVAQ. With
//! [`ParameterPolicy::Dynamic`](crate::config::ParameterPolicy::Dynamic)
//! every predicate owns a [`BackgroundRateEstimator`] fed by the per-OU
//! prediction events, and critical values are recomputed from the current
//! estimates as the stream evolves — Algorithm 3, SVAQD.
//!
//! Positive clips are merged into maximal result sequences (Eq. 4) by
//! [`OnlineEngine::sequences`].

use crate::config::{OnlineConfig, ParameterPolicy, UpdatePolicy};
use crate::online::indicator::{try_evaluate_clip, ClipEvaluation, EvalScratch, GapReason};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use trace::Tracer;
use vaq_detect::{ActionRecognizer, CallProvenance, InferenceStats, ObjectDetector};
use vaq_scanstats::{BackgroundRateEstimator, CriticalValueCache, EstimatorCheckpoint, ScanConfig};
use vaq_types::{conv, ClipId, Query, Result, SequenceSet, VaqError, VideoGeometry};
use vaq_video::{ClipView, VideoStream};

/// Per-predicate scan-statistics state.
#[derive(Debug)]
struct PredicateState {
    cache: Arc<CriticalValueCache>,
    estimator: Option<BackgroundRateEstimator>,
    p_current: f64,
    k_crit: u64,
    /// Below-threshold clip awaiting neighbor confirmation (censor
    /// dilation; see [`PredicateState::offer`]).
    pending: Option<Vec<bool>>,
    /// Whether the pending clip's *predecessor* was below threshold.
    pending_ok: bool,
    /// Whether the last offered clip was below threshold.
    prev_below: bool,
}

impl PredicateState {
    fn new(
        cache: Arc<CriticalValueCache>,
        p0: f64,
        policy: &ParameterPolicy,
        bandwidth_ou: f64,
    ) -> Result<Self> {
        let k_crit = cache.get(p0);
        let estimator = match policy {
            ParameterPolicy::Static => None,
            // The prior carries ~20% of one kernel volume of pseudo-weight:
            // enough to damp small-sample jitter over the first dozen
            // clips, small enough that data dominates quickly — this is
            // what makes SVAQD's accuracy insensitive to p0 (Figure 2)
            // even on short videos.
            ParameterPolicy::Dynamic { .. } => Some(BackgroundRateEstimator::with_prior_weight(
                bandwidth_ou,
                p0,
                bandwidth_ou * 0.2,
            )?),
        };
        Ok(Self {
            cache,
            estimator,
            p_current: p0,
            k_crit,
            pending: None,
            pending_ok: false,
            prev_below: false,
        })
    }

    fn feed(&mut self, events: &[bool]) {
        if let Some(est) = &mut self.estimator {
            est.observe_all(events.iter().copied());
        }
    }

    /// Offers one evaluated clip's events to the background estimator with
    /// censor *dilation*: a clip actually feeds the estimator only when it
    /// AND both its evaluated neighbors are below the censor threshold.
    /// Signal boundaries produce below-threshold clips that still carry
    /// genuine events (an action covering 1–2 shots of a clip); without the
    /// dilation those boundary clips inflate the background estimate by an
    /// order of magnitude.
    fn offer(&mut self, events: &[bool], count: u64) {
        let below = count < self.censor_threshold();
        if below {
            if let Some(prev) = self.pending.take() {
                if self.pending_ok {
                    self.feed(&prev);
                }
            }
            self.pending = Some(events.to_vec());
            self.pending_ok = self.prev_below;
        } else {
            self.pending = None;
        }
        self.prev_below = below;
    }

    /// Background-censoring threshold for this predicate: clips whose event
    /// count reaches it are signal, not background. `max(k_crit, 2)` keeps
    /// the `k = 1` bootstrap regime feeding (see [`OnlineEngine::absorb`]),
    /// and the half-window cap keeps OU-majority clips censored even when a
    /// wildly pessimistic prior has pushed `k_crit` to the window length —
    /// without it, a too-large `p₀` over a short window (e.g. 5 shots)
    /// would let 4-of-5-count signal clips feed the estimator and lock the
    /// estimate high forever.
    fn censor_threshold(&self) -> u64 {
        let half_window = self.cache.config().window.div_ceil(2);
        self.k_crit.max(2).min(half_window).max(2)
    }

    fn refresh(&mut self) {
        if let Some(est) = &self.estimator {
            self.p_current = est.estimate();
            self.k_crit = self.cache.get(self.p_current);
        }
    }

    fn checkpoint(&self) -> PredicateCheckpoint {
        PredicateCheckpoint {
            p_current: self.p_current,
            k_crit: self.k_crit,
            pending: self.pending.clone(),
            pending_ok: self.pending_ok,
            prev_below: self.prev_below,
            estimator: self.estimator.as_ref().map(|e| e.checkpoint()),
        }
    }

    /// Overwrites this freshly-constructed state with checkpointed values.
    /// The critical-value cache is *not* checkpointed: it is a pure
    /// memoization of [`ScanConfig`] and repopulates identically on demand.
    fn restore_from(&mut self, c: &PredicateCheckpoint) -> Result<()> {
        if c.estimator.is_some() != self.estimator.is_some() {
            return Err(VaqError::InvalidConfig(
                "checkpoint parameter policy (static/dynamic) does not match \
                 the engine configuration"
                    .into(),
            ));
        }
        if !(c.p_current.is_finite() && (0.0..=1.0).contains(&c.p_current)) {
            return Err(VaqError::InvalidConfig(format!(
                "checkpoint background probability {} outside [0,1]",
                c.p_current
            )));
        }
        if let (Some(slot), Some(est)) = (&mut self.estimator, &c.estimator) {
            *slot = BackgroundRateEstimator::restore(est)?;
        }
        self.p_current = c.p_current;
        self.k_crit = c.k_crit;
        self.pending = c.pending.clone();
        self.pending_ok = c.pending_ok;
        self.prev_below = c.prev_below;
        Ok(())
    }
}

/// Serializable snapshot of one [`PredicateState`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredicateCheckpoint {
    p_current: f64,
    k_crit: u64,
    pending: Option<Vec<bool>>,
    pending_ok: bool,
    prev_below: bool,
    estimator: Option<EstimatorCheckpoint>,
}

/// A clip the engine processed but could not answer: where it sat in the
/// stream and why it is a gap rather than a negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapMarker {
    /// The unanswerable clip.
    pub clip: ClipId,
    /// Why no answer exists for it.
    pub reason: GapReason,
}

/// Per-clip decision record kept for diagnostics and the noise-elimination
/// metrics (paper Table 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipRecord {
    /// Positive-frame counts per object predicate.
    pub object_counts: Vec<u64>,
    /// Per-object clip indicators.
    pub object_indicators: Vec<bool>,
    /// Positive-shot count, when the action was evaluated.
    pub action_count: Option<u64>,
    /// Action clip indicator, when evaluated.
    pub action_indicator: Option<bool>,
    /// The query indicator `𝟙_q(c)`.
    pub indicator: bool,
    /// Set when the clip degraded to a gap; its indicator is then a forced
    /// negative, not a measurement.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub gap: Option<GapReason>,
}

/// Output of running an online engine over a (finite prefix of a) stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineResult {
    /// The result sequences `P_q` (Eq. 4).
    pub sequences: SequenceSet,
    /// Per-clip decision records, in stream order.
    pub records: Vec<ClipRecord>,
    /// Clips that degraded to gaps, in stream order (empty on a clean run).
    pub gaps: Vec<GapMarker>,
    /// Accumulated inference/engine cost accounting.
    pub stats: InferenceStats,
}

/// One pair of critical-value caches — frame-windowed for object
/// predicates, shot-windowed for the action predicate — shared by every
/// engine built from the same [`OnlineConfig`] and [`VideoGeometry`].
///
/// [`CriticalValueCache`] memoizes a pure function of its [`ScanConfig`],
/// so sharing is free of coordination concerns: `get` takes `&self`, and
/// concurrent engines (one per query, possibly on different threads) each
/// warm the cache for all of the others. A multi-query batch computes each
/// `(p, ScanConfig)` critical value once instead of once per engine.
#[derive(Debug, Clone)]
pub struct SharedScanCaches {
    obj: Arc<CriticalValueCache>,
    act: Arc<CriticalValueCache>,
}

impl SharedScanCaches {
    /// Builds the cache pair for engines configured with `config` over
    /// videos of the given geometry.
    pub fn new(config: &OnlineConfig, geometry: &VideoGeometry) -> Result<Self> {
        Self::new_traced(config, geometry, &Tracer::disabled())
    }

    /// [`Self::new`] with telemetry: both caches record their
    /// `scanstats.cv_hit` / `scanstats.cv_miss` counters and per-miss
    /// `scanstats.cv_compute` spans through `tracer`.
    pub fn new_traced(
        config: &OnlineConfig,
        geometry: &VideoGeometry,
        tracer: &Tracer,
    ) -> Result<Self> {
        config.validate()?;
        let fpc = geometry.frames_per_clip();
        let spc = geometry.shots_in_clip();
        let obj_scan = ScanConfig::new(fpc, config.horizon_clips * fpc, config.alpha)?;
        let act_scan = ScanConfig::new(spc, config.horizon_clips * spc, config.alpha)?;
        let mut obj = CriticalValueCache::new(obj_scan);
        let mut act = CriticalValueCache::new(act_scan);
        obj.set_tracer(tracer.clone());
        act.set_tracer(tracer.clone());
        Ok(Self {
            obj: Arc::new(obj),
            act: Arc::new(act),
        })
    }
}

/// The streaming query engine (SVAQ / SVAQD by configuration).
pub struct OnlineEngine<'m> {
    query: Query,
    config: OnlineConfig,
    detector: &'m dyn ObjectDetector,
    recognizer: &'m dyn ActionRecognizer,
    obj_states: Vec<PredicateState>,
    act_state: PredicateState,
    indicators: Vec<bool>,
    records: Vec<ClipRecord>,
    gaps: Vec<GapMarker>,
    stats: InferenceStats,
    clips_since_refresh: u32,
    /// Reusable evaluation buffers; not part of the checkpointed state.
    scratch: EvalScratch,
    /// Telemetry pipeline; disabled by default and never part of the
    /// checkpointed state — tracing observes decisions, it does not make
    /// them.
    tracer: Tracer,
}

impl<'m> OnlineEngine<'m> {
    /// One in this many short-circuited clips still runs the action
    /// recognizer for background estimation (see
    /// [`Self::explore_action_background`]).
    pub const EXPLORE_EVERY: u64 = 4;

    /// Builds an engine for `query` over videos with the given geometry,
    /// with private critical-value caches. Batch drivers running several
    /// engines over one stream should build one [`SharedScanCaches`] and
    /// use [`Self::with_shared_caches`] instead.
    pub fn new(
        query: Query,
        config: OnlineConfig,
        geometry: &VideoGeometry,
        detector: &'m dyn ObjectDetector,
        recognizer: &'m dyn ActionRecognizer,
    ) -> Result<Self> {
        let caches = SharedScanCaches::new(&config, geometry)?;
        Self::with_shared_caches(query, config, geometry, detector, recognizer, &caches)
    }

    /// Builds an engine whose critical-value lookups go through `caches`,
    /// shared with other engines of the same configuration.
    pub fn with_shared_caches(
        query: Query,
        config: OnlineConfig,
        geometry: &VideoGeometry,
        detector: &'m dyn ObjectDetector,
        recognizer: &'m dyn ActionRecognizer,
        caches: &SharedScanCaches,
    ) -> Result<Self> {
        config.validate()?;
        query.validate()?;
        let fpc = geometry.frames_per_clip();
        let spc = geometry.shots_in_clip();
        let obj_scan = ScanConfig::new(fpc, config.horizon_clips * fpc, config.alpha)?;
        let act_scan = ScanConfig::new(spc, config.horizon_clips * spc, config.alpha)?;
        if *caches.obj.config() != obj_scan || *caches.act.config() != act_scan {
            return Err(VaqError::InvalidConfig(
                "shared critical-value caches were built for a different scan \
                 configuration"
                    .into(),
            ));
        }
        let (bw_frames, bw_shots) = match config.policy {
            ParameterPolicy::Static => (1.0, 1.0), // unused
            ParameterPolicy::Dynamic {
                bandwidth_clips, ..
            } => (bandwidth_clips * fpc as f64, bandwidth_clips * spc as f64),
        };
        let obj_states = query
            .objects
            .iter()
            .map(|_| {
                PredicateState::new(
                    Arc::clone(&caches.obj),
                    config.p0_obj,
                    &config.policy,
                    bw_frames,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        let act_state = PredicateState::new(
            Arc::clone(&caches.act),
            config.p0_act,
            &config.policy,
            bw_shots,
        )?;
        Ok(Self {
            query,
            config,
            detector,
            recognizer,
            obj_states,
            act_state,
            indicators: Vec::new(),
            records: Vec::new(),
            gaps: Vec::new(),
            stats: InferenceStats::default(),
            clips_since_refresh: 0,
            scratch: EvalScratch::new(),
            tracer: Tracer::disabled(),
        })
    }

    /// Installs a tracer: every subsequent clip emits an `online.clip` span
    /// with decision fields plus `online.*` / `detect.*` counters derived
    /// from the per-clip [`InferenceStats`] deltas.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Builder-style [`Self::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The query being processed.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Current critical values: one per object predicate, then the action's.
    pub fn critical_values(&self) -> (Vec<u64>, u64) {
        (
            self.obj_states.iter().map(|s| s.k_crit).collect(),
            self.act_state.k_crit,
        )
    }

    /// Current background-probability estimates (initial values under SVAQ).
    pub fn background_estimates(&self) -> (Vec<f64>, f64) {
        (
            self.obj_states.iter().map(|s| s.p_current).collect(),
            self.act_state.p_current,
        )
    }

    /// Processes one clip; returns its query indicator `𝟙_q(c)`.
    ///
    /// Infallible convenience over [`Self::try_push_clip`]: panics if the
    /// clip aborts, which requires both [`DegradationPolicy::Abort`] and a
    /// model whose fallible path actually fails — use `try_push_clip` in
    /// that configuration.
    ///
    /// [`DegradationPolicy::Abort`]: crate::config::DegradationPolicy::Abort
    #[allow(clippy::expect_used)]
    pub fn push_clip(&mut self, clip: &ClipView) -> bool {
        self.try_push_clip(clip)
            // vaq-lint: allow(no-panic) -- documented panicking convenience; Abort-policy callers use try_push_clip
            .expect("only DegradationPolicy::Abort with a faulting model can fail")
    }

    /// Processes one clip through the fallible model paths; returns its
    /// query indicator `𝟙_q(c)`.
    ///
    /// Faults surviving the configured retries degrade per the configured
    /// [`DegradationPolicy`](crate::config::DegradationPolicy): a gap clip
    /// records a [`GapMarker`], contributes a negative indicator, and is
    /// excluded from background estimation; `Abort` surfaces
    /// [`VaqError::DetectorUnavailable`].
    pub fn try_push_clip(&mut self, clip: &ClipView) -> Result<bool> {
        // vaq-analyze: allow(determinism) -- wall-clock overhead metric only; never feeds query decisions
        let started = Instant::now(); // vaq-lint: allow(nondeterminism) -- wall-clock overhead metric only; never feeds query decisions
        let mut clip_span = trace::span!(&self.tracer, "online.clip", "clip" = clip.id.raw());
        let stats_before = self.stats;
        let k_obj: Vec<u64> = self.obj_states.iter().map(|s| s.k_crit).collect();
        let (evaluation, gap) = try_evaluate_clip(
            &self.query,
            clip,
            self.detector,
            self.recognizer,
            self.config.t_obj,
            self.config.t_act,
            &k_obj,
            self.act_state.k_crit,
            &self.config.retry,
            self.config.degradation,
            &mut self.scratch,
            &mut self.stats,
        )?;
        if let Some(reason) = gap {
            // A gap clip feeds nothing: its events are absent or partial in
            // a way the estimators must not mistake for observed background.
            self.stats.record_gap();
            self.gaps.push(GapMarker {
                clip: clip.id,
                reason,
            });
        } else {
            self.absorb(&evaluation);
            self.explore_action_background(clip, &evaluation);
        }
        self.indicators.push(evaluation.indicator);
        self.records.push(ClipRecord {
            object_counts: evaluation.object_counts,
            object_indicators: evaluation.object_indicators,
            action_count: evaluation.action_count,
            action_indicator: evaluation.action_indicator,
            indicator: evaluation.indicator,
            gap,
        });
        if self.tracer.is_enabled() {
            let d = |now: u64, was: u64| now.saturating_sub(was);
            let frames = d(self.stats.detector_frames, stats_before.detector_frames);
            let shots = d(self.stats.recognizer_shots, stats_before.recognizer_shots);
            let short_circuited = d(
                self.stats.clips_short_circuited,
                stats_before.clips_short_circuited,
            );
            clip_span.record("indicator", evaluation.indicator);
            clip_span.record("short_circuit", short_circuited > 0);
            clip_span.record("frames", frames);
            clip_span.record("shots", shots);
            if let Some(reason) = gap {
                clip_span.record("gap", format!("{reason:?}"));
            }
            self.tracer.counter_add("online.clips", 1);
            self.tracer
                .counter_add("online.positive", u64::from(evaluation.indicator));
            self.tracer
                .counter_add("online.short_circuit", short_circuited);
            self.tracer
                .counter_add("online.gaps", u64::from(gap.is_some()));
            self.tracer.counter_add("detect.frames", frames);
            self.tracer.counter_add(
                "detect.frames_cached",
                d(self.stats.detector_cached, stats_before.detector_cached),
            );
            self.tracer.counter_add("detect.shots", shots);
            self.tracer.counter_add(
                "detect.shots_cached",
                d(self.stats.recognizer_cached, stats_before.recognizer_cached),
            );
            self.tracer.counter_add(
                "detect.faults",
                d(self.stats.detector_faults, stats_before.detector_faults)
                    + d(self.stats.recognizer_faults, stats_before.recognizer_faults),
            );
            self.tracer.counter_add(
                "detect.retries",
                d(self.stats.retries, stats_before.retries),
            );
        }
        // Engine time excludes the *simulated* model milliseconds, which are
        // accounted separately; what we measure here is the real bookkeeping
        // cost standing in for the paper's non-inference time.
        self.stats
            .record_engine(started.elapsed().as_secs_f64() * 1e3);
        Ok(evaluation.indicator)
    }

    /// Records `clip` as a typed gap without evaluating it: a forced
    /// negative indicator, a [`GapMarker`], and a [`ClipRecord`] whose
    /// `gap` field carries `reason` — and **no** model invocations or
    /// background-estimator feeds. The service layer uses this when its
    /// overload policy drops a clip (shed, deadline miss, stalled tenant)
    /// so the engine's clip positions stay aligned with the stream even
    /// though the clip was never looked at.
    ///
    /// Gap clips recorded this way are indistinguishable in the result
    /// shape from fault-degraded clips: excluded from estimation, counted
    /// in `stats.clips_gapped`, negative in the indicator sequence.
    pub fn push_gap(&mut self, clip: ClipId, reason: GapReason) {
        let n_obj = self.query.objects.len();
        self.stats.record_gap();
        self.gaps.push(GapMarker { clip, reason });
        self.indicators.push(false);
        self.records.push(ClipRecord {
            object_counts: vec![0; n_obj],
            object_indicators: vec![false; n_obj],
            action_count: None,
            action_indicator: None,
            indicator: false,
            gap: Some(reason),
        });
        if self.tracer.is_enabled() {
            let mut span = trace::span!(&self.tracer, "online.clip", "clip" = clip.raw());
            span.record("indicator", false);
            span.record("gap", format!("{reason:?}"));
            self.tracer.counter_add("online.clips", 1);
            self.tracer.counter_add("online.gaps", 1);
        }
    }

    /// SVAQD bookkeeping after a clip: feed estimators, refresh critical
    /// values per the update policy.
    ///
    /// **Censoring.** §3.2 defines the background probability as the rate of
    /// positive predictions *"when the query predicates are not satisfied"*.
    /// Feeding every clip into the estimator would converge it to the
    /// overall (signal-inflated) rate, saturate the critical value at the
    /// window length, and fragment true sequences — the estimator would
    /// unlearn exactly the events it is meant to detect. Feeding only clips
    /// whose indicator was negative has the opposite degeneracy: at
    /// `k_crit = 1` the negative clips are event-free *by construction* and
    /// the estimate collapses to zero. The robust rule, used here: a clip is
    /// censored from background estimation only when its event count
    /// reaches **`clamp(k_crit, 2, ⌈w/2⌉)`** — a clip flagged positive is signal and
    /// leaves the background sample, except in the `k_crit = 1` bootstrap
    /// regime where single-event clips (the false positives the estimator
    /// exists to measure) must still feed it. This is self-stabilizing from
    /// both directions: a too-small `p₀` (k = 1) still absorbs 1-event
    /// clips and calibrates up to the detector's real false-positive rate;
    /// a too-large `p₀` lets signal clips feed only until the critical
    /// value settles below their counts, after which they leave the
    /// background sample.
    fn absorb(&mut self, evaluation: &ClipEvaluation) {
        let ParameterPolicy::Dynamic { update, .. } = self.config.policy else {
            return;
        };
        for ((state, events), &count) in self
            .obj_states
            .iter_mut()
            .zip(&evaluation.object_events)
            .zip(&evaluation.object_counts)
        {
            state.offer(events, count);
        }
        if let (Some(events), Some(count)) = (&evaluation.action_events, evaluation.action_count) {
            self.act_state.offer(events, count);
        }
        self.clips_since_refresh += 1;
        let refresh = match update {
            UpdatePolicy::EveryClip => true,
            UpdatePolicy::PositiveClips => evaluation.indicator,
            UpdatePolicy::EveryNClips(n) => self.clips_since_refresh >= n,
        };
        if refresh {
            self.clips_since_refresh = 0;
            for state in &mut self.obj_states {
                state.refresh();
            }
            self.act_state.refresh();
        }
    }

    /// Background exploration for the action estimator. Short-circuiting
    /// (Algorithm 2) means the recognizer normally runs only on clips whose
    /// object predicates all passed — a sample *conditioned on signal
    /// regions*, which would bias the action's background-rate estimate
    /// upward (object and action presence are correlated; that correlation
    /// is the whole point of the query). To keep the estimate honest, every
    /// [`Self::EXPLORE_EVERY`]-th short-circuited clip still runs the
    /// recognizer, purely to feed the estimator — the clip's query
    /// indicator is already decided. The extra inference cost is accounted
    /// like any other recognizer invocation.
    fn explore_action_background(&mut self, clip: &ClipView, evaluation: &ClipEvaluation) {
        const _: () = assert!(OnlineEngine::EXPLORE_EVERY > 0);
        if !matches!(self.config.policy, ParameterPolicy::Dynamic { .. })
            || evaluation.action_events.is_some()
        {
            return;
        }
        if clip.id.raw() % Self::EXPLORE_EVERY != 0 {
            return;
        }
        // Exploration is best-effort and never retried: a faulted shot is
        // simply not sampled. The clip's query indicator is already decided,
        // so a fault here can only thin the background sample.
        let mut events: Vec<bool> = Vec::with_capacity(clip.shots.len());
        for shot in &clip.shots {
            match self.recognizer.try_recognize_traced(shot) {
                Ok((preds, provenance)) => {
                    match provenance {
                        CallProvenance::Executed => self
                            .stats
                            .record_recognizer(1, self.recognizer.latency_ms()),
                        CallProvenance::Cached => self.stats.record_recognizer_cached(1),
                    }
                    events.push(
                        preds
                            .iter()
                            .any(|p| p.action == self.query.action && p.score >= self.config.t_act),
                    );
                }
                Err(_) => self.stats.record_recognizer_fault(),
            }
        }
        if events.is_empty() {
            return;
        }
        let count = conv::count_true(&events);
        self.act_state.offer(&events, count);
    }

    /// Result sequences over the clips processed so far (Eq. 4).
    pub fn sequences(&self) -> SequenceSet {
        SequenceSet::from_indicator(&self.indicators)
    }

    /// Per-clip indicator log.
    pub fn indicators(&self) -> &[bool] {
        &self.indicators
    }

    /// Gap markers recorded so far (empty on a clean run).
    pub fn gaps(&self) -> &[GapMarker] {
        &self.gaps
    }

    /// Cost accounting so far.
    pub fn stats(&self) -> &InferenceStats {
        &self.stats
    }

    /// Drains a stream to its end and returns the full result.
    pub fn run(mut self, stream: VideoStream<'_>) -> OnlineResult {
        for clip in stream {
            self.push_clip(&clip);
        }
        self.into_result()
    }

    /// Drains a stream to its end through the fallible clip path.
    pub fn try_run(mut self, stream: VideoStream<'_>) -> Result<OnlineResult> {
        for clip in stream {
            self.try_push_clip(&clip)?;
        }
        Ok(self.into_result())
    }

    /// Finalizes the engine into its result.
    pub fn into_result(self) -> OnlineResult {
        OnlineResult {
            sequences: SequenceSet::from_indicator(&self.indicators),
            records: self.records,
            gaps: self.gaps,
            stats: self.stats,
        }
    }

    /// Snapshots the full engine state at a clip boundary. Restoring the
    /// checkpoint with [`Self::restore`] and feeding the remaining clips
    /// reproduces the uninterrupted run bit for bit (modulo wall-clock
    /// `engine_ms`).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            clips_processed: conv::len_u64(self.indicators.len()),
            indicators: self.indicators.clone(),
            records: self.records.clone(),
            gaps: self.gaps.clone(),
            stats: self.stats,
            obj_states: self.obj_states.iter().map(|s| s.checkpoint()).collect(),
            act_state: self.act_state.checkpoint(),
            clips_since_refresh: self.clips_since_refresh,
        }
    }

    /// Rebuilds an engine from a checkpoint taken by [`Self::checkpoint`].
    ///
    /// `query`, `config`, and `geometry` must match the checkpointing
    /// engine's — they are not embedded in the checkpoint (models are not
    /// serializable), so mismatches are detected only structurally: wrong
    /// predicate counts or a static/dynamic policy flip are rejected, a
    /// same-shaped different query is the caller's responsibility.
    pub fn restore(
        query: Query,
        config: OnlineConfig,
        geometry: &VideoGeometry,
        detector: &'m dyn ObjectDetector,
        recognizer: &'m dyn ActionRecognizer,
        checkpoint: &EngineCheckpoint,
    ) -> Result<Self> {
        let mut engine = Self::new(query, config, geometry, detector, recognizer)?;
        if checkpoint.obj_states.len() != engine.obj_states.len() {
            return Err(VaqError::InvalidConfig(format!(
                "checkpoint has {} object-predicate states, query has {}",
                checkpoint.obj_states.len(),
                engine.obj_states.len()
            )));
        }
        let n = conv::len_u64(checkpoint.indicators.len());
        if checkpoint.clips_processed != n || conv::len_u64(checkpoint.records.len()) != n {
            return Err(VaqError::InvalidConfig(format!(
                "corrupt checkpoint: clips_processed={} but {} indicators, {} records",
                checkpoint.clips_processed,
                n,
                checkpoint.records.len()
            )));
        }
        for (state, c) in engine.obj_states.iter_mut().zip(&checkpoint.obj_states) {
            state.restore_from(c)?;
        }
        engine.act_state.restore_from(&checkpoint.act_state)?;
        engine.indicators = checkpoint.indicators.clone();
        engine.records = checkpoint.records.clone();
        engine.gaps = checkpoint.gaps.clone();
        engine.stats = checkpoint.stats;
        engine.clips_since_refresh = checkpoint.clips_since_refresh;
        Ok(engine)
    }
}

/// Serializable snapshot of a whole [`OnlineEngine`] at a clip boundary —
/// everything needed to resume the stream where it stopped, except the
/// models themselves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Clips fed to the engine before the snapshot (== resume position).
    pub clips_processed: u64,
    indicators: Vec<bool>,
    records: Vec<ClipRecord>,
    gaps: Vec<GapMarker>,
    stats: InferenceStats,
    obj_states: Vec<PredicateCheckpoint>,
    act_state: PredicateCheckpoint,
    clips_since_refresh: u32,
}

impl EngineCheckpoint {
    /// Serializes the checkpoint to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| VaqError::Storage(format!("checkpoint serialization failed: {e}")))
    }

    /// Parses a checkpoint from JSON produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json)
            .map_err(|e| VaqError::Storage(format!("checkpoint parse failed: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_detect::profiles;
    use vaq_detect::{SimulatedActionRecognizer, SimulatedObjectDetector};
    use vaq_types::{ActionType, ClipInterval, ObjectType};
    use vaq_video::SceneScriptBuilder;

    fn o(i: u32) -> ObjectType {
        ObjectType::new(i)
    }
    fn a(i: u32) -> ActionType {
        ActionType::new(i)
    }

    const G: VideoGeometry = VideoGeometry::PAPER_DEFAULT;

    /// Object 1 on clips 4..14 (frames 200..700 minus tail), action on
    /// clips 6..17 — ground truth for q(a0; o1) is clips 6..13.
    fn script() -> vaq_video::SceneScript {
        let mut b = SceneScriptBuilder::new(1500, G);
        b.object_span(o(1), 200, 700).unwrap();
        b.action_span(a(0), 300, 900).unwrap();
        b.build()
    }

    fn ideal_models() -> (SimulatedObjectDetector, SimulatedActionRecognizer) {
        (
            SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1),
            SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1),
        )
    }

    #[test]
    fn svaq_recovers_ground_truth_with_ideal_models() {
        let s = script();
        let (det, rec) = ideal_models();
        let engine = OnlineEngine::new(
            Query::new(a(0), vec![o(1)]),
            OnlineConfig::svaq(),
            &G,
            &det,
            &rec,
        )
        .unwrap();
        let result = engine.run(vaq_video::VideoStream::new(&s));
        let gt = s.ground_truth(&Query::new(a(0), vec![o(1)]), 0.5);
        assert_eq!(result.sequences, gt, "got {} want {}", result.sequences, gt);
    }

    #[test]
    fn svaqd_recovers_ground_truth_with_ideal_models() {
        let s = script();
        let (det, rec) = ideal_models();
        let engine = OnlineEngine::new(
            Query::new(a(0), vec![o(1)]),
            OnlineConfig::svaqd(),
            &G,
            &det,
            &rec,
        )
        .unwrap();
        let result = engine.run(vaq_video::VideoStream::new(&s));
        let gt = s.ground_truth(&Query::new(a(0), vec![o(1)]), 0.5);
        assert_eq!(result.sequences, gt);
    }

    #[test]
    fn noisy_models_still_find_the_sequence() {
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 86, 11);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 36, 11);
        let engine = OnlineEngine::new(
            Query::new(a(0), vec![o(1)]),
            OnlineConfig::svaqd(),
            &G,
            &det,
            &rec,
        )
        .unwrap();
        let result = engine.run(vaq_video::VideoStream::new(&s));
        let gt = ClipInterval::new(6, 13);
        assert!(
            result
                .sequences
                .intervals()
                .iter()
                .any(|iv| iv.iou(&gt) >= 0.5),
            "no sequence matching GT {gt}: got {}",
            result.sequences
        );
    }

    #[test]
    fn svaqd_updates_estimates_svaq_does_not() {
        // With a noisy detector, SVAQD's censored background estimate moves
        // from the prior toward the detector's effective false-positive
        // rate; SVAQ's stays pinned at p0.
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 86, 5);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 36, 5);
        let q = Query::new(a(0), vec![o(1)]);

        let mut svaq = OnlineEngine::new(q.clone(), OnlineConfig::svaq(), &G, &det, &rec).unwrap();
        let mut svaqd =
            OnlineEngine::new(q.clone(), OnlineConfig::svaqd(), &G, &det, &rec).unwrap();
        let stream = vaq_video::VideoStream::new(&s);
        for clip in stream {
            svaq.push_clip(&clip);
            svaqd.push_clip(&clip);
        }
        let (svaq_p, _) = svaq.background_estimates();
        assert_eq!(svaq_p, vec![1e-4], "SVAQ keeps p0");
        let (svaqd_p, _) = svaqd.background_estimates();
        assert!(
            svaqd_p[0] > 3e-4,
            "SVAQD estimate {} should have moved toward the FP rate",
            svaqd_p[0]
        );
        // Censoring keeps the estimate at background (FP) level, far below
        // the object's 1/3 presence duty.
        assert!(svaqd_p[0] < 0.05, "estimate {} absorbed signal", svaqd_p[0]);
    }

    #[test]
    fn svaqd_critical_values_calibrate_to_detector_noise() {
        // A wildly optimistic prior (p0 = 1e-6 ⇒ k_crit = 1) is corrected
        // upward once the estimator sees the detector's real FP rate.
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 86, 5);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 36, 5);
        let q = Query::new(a(0), vec![o(1)]);
        let cfg = OnlineConfig::svaqd().with_p0(1e-6);
        let mut engine = OnlineEngine::new(q, cfg, &G, &det, &rec).unwrap();
        let (k0, _) = engine.critical_values();
        assert_eq!(k0, vec![1], "p0=1e-6 starts at k=1");
        for clip in vaq_video::VideoStream::new(&s) {
            engine.push_clip(&clip);
        }
        let (k1, _) = engine.critical_values();
        assert!(k1[0] > k0[0], "k_crit should rise: {} -> {}", k0[0], k1[0]);
    }

    #[test]
    fn short_circuit_accounting_flows_through() {
        let s = script();
        let (det, rec) = ideal_models();
        let q = Query::new(a(0), vec![o(1)]);
        let engine = OnlineEngine::new(q, OnlineConfig::svaq(), &G, &det, &rec).unwrap();
        let result = engine.run(vaq_video::VideoStream::new(&s));
        // Object predicate holds on clips 4..13 (10 clips of 30): 20 clips
        // short-circuit and never reach the recognizer.
        assert_eq!(result.stats.clips_short_circuited, 20);
        assert_eq!(result.stats.recognizer_shots, 10 * 5);
        assert_eq!(result.stats.detector_frames, 30 * 50);
    }

    #[test]
    fn records_align_with_indicators() {
        let s = script();
        let (det, rec) = ideal_models();
        let q = Query::new(a(0), vec![o(1)]);
        let engine = OnlineEngine::new(q, OnlineConfig::svaq(), &G, &det, &rec).unwrap();
        let result = engine.run(vaq_video::VideoStream::new(&s));
        assert_eq!(result.records.len(), 30);
        for r in &result.records {
            assert_eq!(
                r.indicator,
                r.object_indicators[0] && r.action_indicator == Some(true)
            );
        }
    }

    #[test]
    fn update_policy_every_n_clips() {
        let s = script();
        let (det, rec) = ideal_models();
        let q = Query::new(a(0), vec![o(1)]);
        let cfg = OnlineConfig {
            policy: ParameterPolicy::Dynamic {
                bandwidth_clips: 60.0,
                update: UpdatePolicy::EveryNClips(10),
            },
            ..OnlineConfig::svaqd()
        };
        let mut engine = OnlineEngine::new(q, cfg, &G, &det, &rec).unwrap();
        let stream = vaq_video::VideoStream::new(&s);
        let mut clips = stream.collect::<Vec<_>>().into_iter();
        for clip in clips.by_ref().take(9) {
            engine.push_clip(&clip);
        }
        let (p_before, _) = engine.background_estimates();
        assert_eq!(p_before, vec![1e-4], "no refresh before 10 clips");
        engine.push_clip(&clips.next().unwrap());
        let (p_after, _) = engine.background_estimates();
        assert_ne!(p_after, vec![1e-4], "refresh on the 10th clip");
    }

    #[test]
    fn update_policy_positive_clips_refreshes_only_on_hits() {
        // Algorithm 3's literal update gate: estimates refresh only after
        // clips whose query indicator fired.
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 86, 5);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 36, 5);
        let q = Query::new(a(0), vec![o(1)]);
        let cfg = OnlineConfig {
            policy: ParameterPolicy::Dynamic {
                bandwidth_clips: 60.0,
                update: UpdatePolicy::PositiveClips,
            },
            ..OnlineConfig::svaqd()
        };
        let mut engine = OnlineEngine::new(q, cfg, &G, &det, &rec).unwrap();
        let mut last_p = engine.background_estimates().0[0];
        for clip in vaq_video::VideoStream::new(&s) {
            let positive = engine.push_clip(&clip);
            let p_now = engine.background_estimates().0[0];
            if !positive {
                assert_eq!(p_now, last_p, "estimate refreshed on a negative clip");
            }
            last_p = p_now;
        }
        // The stream has positive clips, so at least one refresh happened.
        assert_ne!(last_p, 1e-4);
    }

    #[test]
    fn exploration_sampling_accounts_recognizer_cost() {
        // Under SVAQD, a quarter of short-circuited clips still run the
        // recognizer for background estimation — and are billed for it.
        let s = script();
        let (det, rec) = ideal_models();
        let q = Query::new(a(0), vec![o(1)]);
        let svaq = OnlineEngine::new(q.clone(), OnlineConfig::svaq(), &G, &det, &rec)
            .unwrap()
            .run(vaq_video::VideoStream::new(&s));
        let svaqd = OnlineEngine::new(q, OnlineConfig::svaqd(), &G, &det, &rec)
            .unwrap()
            .run(vaq_video::VideoStream::new(&s));
        assert!(
            svaqd.stats.recognizer_shots > svaq.stats.recognizer_shots,
            "SVAQD explores: {} vs {}",
            svaqd.stats.recognizer_shots,
            svaq.stats.recognizer_shots
        );
        // Exploration is bounded by 1/EXPLORE_EVERY of the skipped clips.
        let explored = svaqd.stats.recognizer_shots - svaq.stats.recognizer_shots;
        let bound = svaq
            .stats
            .clips_short_circuited
            .div_ceil(OnlineEngine::EXPLORE_EVERY)
            * u64::from(G.shots_per_clip);
        assert!(explored <= bound, "explored {explored} > bound {bound}");
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let (det, rec) = ideal_models();
        let bad = OnlineConfig {
            alpha: 2.0,
            ..OnlineConfig::svaq()
        };
        assert!(OnlineEngine::new(Query::new(a(0), vec![o(1)]), bad, &G, &det, &rec).is_err());
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        // Noisy models + SVAQD (the hardest case: live estimators, censor
        // pipeline state). Kill at every 7th clip boundary, restore, resume:
        // the result must match the uninterrupted run exactly.
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 86, 11);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 36, 11);
        let q = Query::new(a(0), vec![o(1)]);
        let cfg = OnlineConfig::svaqd();
        let clips: Vec<_> = vaq_video::VideoStream::new(&s).collect();

        let mut reference = OnlineEngine::new(q.clone(), cfg, &G, &det, &rec).unwrap();
        for clip in &clips {
            reference.push_clip(clip);
        }
        let reference = reference.into_result();

        for cut in [1, 7, 14, 29] {
            let mut first = OnlineEngine::new(q.clone(), cfg, &G, &det, &rec).unwrap();
            for clip in &clips[..cut] {
                first.push_clip(clip);
            }
            let ckpt = EngineCheckpoint::from_json(&first.checkpoint().to_json().unwrap()).unwrap();
            drop(first); // the "crash"
            let mut resumed = OnlineEngine::restore(q.clone(), cfg, &G, &det, &rec, &ckpt).unwrap();
            assert_eq!(ckpt.clips_processed, cut as u64);
            for clip in &clips[cut..] {
                resumed.push_clip(clip);
            }
            let resumed = resumed.into_result();
            assert_eq!(resumed.sequences, reference.sequences, "cut at {cut}");
            assert_eq!(resumed.records, reference.records, "cut at {cut}");
            assert_eq!(
                resumed.stats.detector_frames, reference.stats.detector_frames,
                "cut at {cut}"
            );
            assert_eq!(
                resumed.stats.recognizer_shots, reference.stats.recognizer_shots,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let (det, rec) = ideal_models();
        let q1 = Query::new(a(0), vec![o(1)]);
        let q2 = Query::new(a(0), vec![o(1), o(2)]);
        let cfg = OnlineConfig::svaqd();
        let engine = OnlineEngine::new(q1.clone(), cfg, &G, &det, &rec).unwrap();
        let ckpt = engine.checkpoint();
        // Wrong predicate count.
        assert!(OnlineEngine::restore(q2, cfg, &G, &det, &rec, &ckpt).is_err());
        // Static/dynamic policy flip.
        assert!(OnlineEngine::restore(q1, OnlineConfig::svaq(), &G, &det, &rec, &ckpt).is_err());
    }

    #[test]
    fn corrupt_checkpoint_json_is_storage_error() {
        match EngineCheckpoint::from_json("{not json") {
            Err(vaq_types::VaqError::Storage(_)) => {}
            other => panic!("want Storage error, got {other:?}"),
        }
    }

    #[test]
    fn two_engines_share_one_critical_value_cache_across_threads() {
        // Two engines over the same shared caches on two threads must each
        // produce exactly what a private-cache engine produces — the cache
        // is a pure memoizer, so sharing only changes who computes first.
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 86, 11);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 36, 11);
        let cfg = OnlineConfig::svaqd();
        let queries = [Query::new(a(0), vec![o(1)]), Query::action_only(a(0))];

        let reference: Vec<OnlineResult> = queries
            .iter()
            .map(|q| {
                OnlineEngine::new(q.clone(), cfg, &G, &det, &rec)
                    .unwrap()
                    .run(vaq_video::VideoStream::new(&s))
            })
            .collect();

        let caches = SharedScanCaches::new(&cfg, &G).unwrap();
        let shared: Vec<OnlineResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|q| {
                    let caches = caches.clone();
                    let (s, det, rec) = (&s, &det, &rec);
                    scope.spawn(move || {
                        OnlineEngine::with_shared_caches(q.clone(), cfg, &G, det, rec, &caches)
                            .unwrap()
                            .run(vaq_video::VideoStream::new(s))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine thread panicked"))
                .collect()
        });

        for (i, (r, sh)) in reference.iter().zip(&shared).enumerate() {
            assert_eq!(r.sequences, sh.sequences, "query {i}");
            assert_eq!(r.records, sh.records, "query {i}");
        }
    }

    #[test]
    fn shared_caches_reject_mismatched_geometry() {
        let (det, rec) = ideal_models();
        let cfg = OnlineConfig::svaqd();
        let caches = SharedScanCaches::new(&cfg, &G).unwrap();
        let other = VideoGeometry {
            frames_per_shot: 20,
            ..G
        };
        let err = OnlineEngine::with_shared_caches(
            Query::new(a(0), vec![o(1)]),
            cfg,
            &other,
            &det,
            &rec,
            &caches,
        );
        assert!(err.is_err(), "geometry mismatch must be rejected");
    }

    #[test]
    fn clean_runs_have_no_gaps() {
        let s = script();
        let (det, rec) = ideal_models();
        let q = Query::new(a(0), vec![o(1)]);
        let engine = OnlineEngine::new(q, OnlineConfig::svaqd(), &G, &det, &rec).unwrap();
        let result = engine.try_run(vaq_video::VideoStream::new(&s)).unwrap();
        assert!(result.gaps.is_empty());
        assert_eq!(result.stats.clips_gapped, 0);
        assert!(result.records.iter().all(|r| r.gap.is_none()));
    }
}
