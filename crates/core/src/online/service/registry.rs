//! The standing-query registry: who is running what, since when.
//!
//! The registry holds *metadata only* — engines live beside it in the
//! service session (they borrow the shared model caches and are not
//! serializable). Query ids are assigned to every submission attempt in
//! arrival order, admitted or not, so a schedule can reference "the nth
//! submission" stably regardless of admission outcomes.

use super::tenant::TenantId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vaq_types::Query;

/// Identity of one submission to the service, in arrival order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// What a tenant submits: the query plus its service-level attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The standing VAQ query.
    pub query: Query,
    /// Shed priority: higher values survive overload longer. Does not
    /// affect service order.
    pub priority: u8,
    /// Queue-wait deadline in simulated µs; `None` uses the service
    /// default.
    pub deadline_us: Option<u64>,
}

/// One admitted standing query's registry entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandingEntry {
    /// Submission identity.
    pub id: QueryId,
    /// The submission.
    pub spec: QuerySpec,
    /// Detector-budget weight charged against the tenant.
    pub weight: u64,
    /// Tick at which the query was admitted (its first visible clip).
    pub admitted_tick: u64,
}

/// Registry of currently-standing queries, keyed by [`QueryId`] so every
/// iteration is in deterministic admission order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryRegistry {
    entries: BTreeMap<QueryId, StandingEntry>,
    next_id: u64,
}

impl QueryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the next submission id (every submission consumes one,
    /// admitted or rejected).
    pub fn next_submission_id(&mut self) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Registers an admitted query.
    pub fn insert(&mut self, entry: StandingEntry) {
        self.entries.insert(entry.id, entry);
    }

    /// Removes and returns a standing entry (a departure).
    pub fn remove(&mut self, id: QueryId) -> Option<StandingEntry> {
        self.entries.remove(&id)
    }

    /// The standing entry for `id`, if admitted and not yet departed.
    pub fn get(&self, id: QueryId) -> Option<&StandingEntry> {
        self.entries.get(&id)
    }

    /// Number of standing queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no queries are standing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Standing entries in admission order.
    pub fn iter(&self) -> impl Iterator<Item = &StandingEntry> {
        self.entries.values()
    }

    /// Standing ids in admission order (snapshot, for iteration while
    /// mutating the registry).
    pub fn ids(&self) -> Vec<QueryId> {
        self.entries.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_types::{ActionType, ObjectType};

    fn spec(tenant: u32) -> QuerySpec {
        QuerySpec {
            tenant: TenantId(tenant),
            query: Query::new(ActionType::new(0), vec![ObjectType::new(1)]),
            priority: 0,
            deadline_us: None,
        }
    }

    #[test]
    fn submission_ids_are_sequential_even_across_rejections() {
        let mut r = QueryRegistry::new();
        let a = r.next_submission_id();
        let b = r.next_submission_id(); // e.g. rejected: never inserted
        let c = r.next_submission_id();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        r.insert(StandingEntry {
            id: c,
            spec: spec(3),
            weight: 2,
            admitted_tick: 7,
        });
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(b), None);
        assert_eq!(r.get(c).map(|e| e.admitted_tick), Some(7));
    }

    #[test]
    fn iteration_is_in_admission_order() {
        let mut r = QueryRegistry::new();
        for t in [5u32, 1, 9] {
            let id = r.next_submission_id();
            r.insert(StandingEntry {
                id,
                spec: spec(t),
                weight: 1,
                admitted_tick: 0,
            });
        }
        let order: Vec<u32> = r.iter().map(|e| e.spec.tenant.0).collect();
        assert_eq!(order, vec![5, 1, 9]);
        r.remove(QueryId(1));
        assert_eq!(r.ids(), vec![QueryId(0), QueryId(2)]);
    }
}
