//! Tenant identity, quotas, and the admission controller.
//!
//! Every standing query belongs to a [`TenantId`]. Admission is a pure
//! function of the controller's bookkeeping state — no clocks, no
//! randomness — so the same submission sequence always produces the same
//! admit/reject decisions (the determinism contract of DESIGN.md §13).
//!
//! Two budgets gate admission, both checked before an engine is built:
//!
//! * **standing-query counts** — a global cap ([`ServiceLimits::max_standing`])
//!   and a per-tenant cap ([`TenantQuota::max_standing`]);
//! * **detector-budget share** — each query carries a *weight* (its
//!   predicate count: one detector pass feeds all of a query's object
//!   predicates, but evaluation/recognizer cost scales with predicates),
//!   and a tenant may hold at most [`TenantQuota::max_budget_share`] of
//!   [`ServiceLimits::budget_units`] total weight.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vaq_types::Query;

/// A tenant of the standing-query service. Plain `u32` identity — the
/// service does not interpret it beyond equality and ordering (all
/// per-tenant accounting iterates in `TenantId` order for determinism).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Most standing queries this tenant may hold at once.
    pub max_standing: u32,
    /// Largest fraction of [`ServiceLimits::budget_units`] this tenant's
    /// summed query weights may occupy, in `(0, 1]`.
    pub max_budget_share: f64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            max_standing: 8,
            max_budget_share: 0.5,
        }
    }
}

/// Global service capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceLimits {
    /// Most standing queries across all tenants.
    pub max_standing: u32,
    /// Total detector-budget units available for query weights.
    pub budget_units: u64,
    /// Quota applied to tenants without an explicit override.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides (sorted; deterministic iteration).
    pub quotas: BTreeMap<TenantId, TenantQuota>,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        Self {
            max_standing: 16,
            budget_units: 64,
            default_quota: TenantQuota::default(),
            quotas: BTreeMap::new(),
        }
    }
}

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The global standing-query cap is reached.
    ServiceCapacity,
    /// The tenant already holds its maximum standing queries.
    TenantQueryQuota,
    /// Admitting would push the tenant past its detector-budget share.
    TenantBudgetShare,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::ServiceCapacity => write!(f, "service at capacity"),
            RejectReason::TenantQueryQuota => write!(f, "tenant standing-query quota"),
            RejectReason::TenantBudgetShare => write!(f, "tenant detector-budget share"),
        }
    }
}

/// The detector-budget weight of a query: one unit per predicate (objects
/// plus the action). The detector's single forward pass serves all object
/// predicates of one query, but per-predicate evaluation and recognizer
/// exposure still scale with predicate count, so weight is the paper-
/// faithful proxy for how much of the shared budget a query occupies.
pub fn query_weight(query: &Query) -> u64 {
    vaq_types::conv::len_u64(query.objects.len()) + 1
}

/// Running per-tenant usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct TenantUsage {
    standing: u32,
    weight: u64,
}

/// Admission bookkeeping: who holds how much of the service.
///
/// The controller only counts; it never builds engines. Callers admit via
/// [`AdmissionController::try_admit`] (which reserves capacity on success)
/// and must pair every admission with a [`AdmissionController::release`]
/// when the query retires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    limits: ServiceLimits,
    usage: BTreeMap<TenantId, TenantUsage>,
    standing_total: u32,
    weight_total: u64,
}

impl AdmissionController {
    /// A controller with no admitted queries.
    pub fn new(limits: ServiceLimits) -> Self {
        Self {
            limits,
            usage: BTreeMap::new(),
            standing_total: 0,
            weight_total: 0,
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> &ServiceLimits {
        &self.limits
    }

    /// Standing queries currently admitted across all tenants.
    pub fn standing_total(&self) -> u32 {
        self.standing_total
    }

    /// Summed weight currently admitted across all tenants.
    pub fn weight_total(&self) -> u64 {
        self.weight_total
    }

    /// The quota in force for `tenant` (override or default).
    pub fn quota_for(&self, tenant: TenantId) -> TenantQuota {
        self.limits
            .quotas
            .get(&tenant)
            .copied()
            .unwrap_or(self.limits.default_quota)
    }

    /// Checks every gate and reserves capacity if all pass. Returns the
    /// first failing gate otherwise — gates are checked in a fixed order
    /// (global capacity, tenant count, tenant budget share) so rejection
    /// reasons are deterministic.
    pub fn try_admit(&mut self, tenant: TenantId, weight: u64) -> Result<(), RejectReason> {
        if self.standing_total >= self.limits.max_standing
            || self.weight_total.saturating_add(weight) > self.limits.budget_units
        {
            return Err(RejectReason::ServiceCapacity);
        }
        let quota = self.quota_for(tenant);
        let usage = self.usage.get(&tenant).copied().unwrap_or_default();
        if usage.standing >= quota.max_standing {
            return Err(RejectReason::TenantQueryQuota);
        }
        let budget = quota.max_budget_share * self.limits.budget_units as f64;
        if usage.weight.saturating_add(weight) as f64 > budget {
            return Err(RejectReason::TenantBudgetShare);
        }
        let entry = self.usage.entry(tenant).or_default();
        entry.standing += 1;
        entry.weight = entry.weight.saturating_add(weight);
        self.standing_total += 1;
        self.weight_total = self.weight_total.saturating_add(weight);
        Ok(())
    }

    /// Returns a retired query's capacity to the pool.
    pub fn release(&mut self, tenant: TenantId, weight: u64) {
        if let Some(usage) = self.usage.get_mut(&tenant) {
            usage.standing = usage.standing.saturating_sub(1);
            usage.weight = usage.weight.saturating_sub(weight);
            if usage.standing == 0 && usage.weight == 0 {
                self.usage.remove(&tenant);
            }
        }
        self.standing_total = self.standing_total.saturating_sub(1);
        self.weight_total = self.weight_total.saturating_sub(weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_types::{ActionType, ObjectType};

    fn q(objects: u32) -> Query {
        Query::new(
            ActionType::new(0),
            (0..objects).map(ObjectType::new).collect(),
        )
    }

    #[test]
    fn weight_counts_predicates() {
        assert_eq!(query_weight(&q(0)), 1);
        assert_eq!(query_weight(&q(3)), 4);
    }

    #[test]
    fn global_capacity_gates_first() {
        let mut c = AdmissionController::new(ServiceLimits {
            max_standing: 1,
            ..ServiceLimits::default()
        });
        assert_eq!(c.try_admit(TenantId(0), 1), Ok(()));
        assert_eq!(
            c.try_admit(TenantId(1), 1),
            Err(RejectReason::ServiceCapacity)
        );
        c.release(TenantId(0), 1);
        assert_eq!(c.try_admit(TenantId(1), 1), Ok(()));
    }

    #[test]
    fn tenant_count_quota_enforced() {
        let limits = ServiceLimits {
            default_quota: TenantQuota {
                max_standing: 2,
                max_budget_share: 1.0,
            },
            ..ServiceLimits::default()
        };
        let mut c = AdmissionController::new(limits);
        assert_eq!(c.try_admit(TenantId(7), 1), Ok(()));
        assert_eq!(c.try_admit(TenantId(7), 1), Ok(()));
        assert_eq!(
            c.try_admit(TenantId(7), 1),
            Err(RejectReason::TenantQueryQuota)
        );
        // Another tenant is unaffected.
        assert_eq!(c.try_admit(TenantId(8), 1), Ok(()));
    }

    #[test]
    fn budget_share_quota_enforced() {
        let limits = ServiceLimits {
            max_standing: 16,
            budget_units: 10,
            default_quota: TenantQuota {
                max_standing: 16,
                max_budget_share: 0.3,
            },
            quotas: BTreeMap::new(),
        };
        let mut c = AdmissionController::new(limits);
        assert_eq!(c.try_admit(TenantId(1), 3), Ok(()));
        assert_eq!(
            c.try_admit(TenantId(1), 1),
            Err(RejectReason::TenantBudgetShare)
        );
        c.release(TenantId(1), 3);
        assert_eq!(c.try_admit(TenantId(1), 2), Ok(()));
    }

    #[test]
    fn per_tenant_override_beats_default() {
        let mut quotas = BTreeMap::new();
        quotas.insert(
            TenantId(9),
            TenantQuota {
                max_standing: 1,
                max_budget_share: 1.0,
            },
        );
        let limits = ServiceLimits {
            quotas,
            ..ServiceLimits::default()
        };
        let mut c = AdmissionController::new(limits);
        assert_eq!(c.try_admit(TenantId(9), 1), Ok(()));
        assert_eq!(
            c.try_admit(TenantId(9), 1),
            Err(RejectReason::TenantQueryQuota)
        );
    }

    #[test]
    fn admission_state_round_trips_through_release() {
        let mut c = AdmissionController::new(ServiceLimits::default());
        let before = c.clone();
        assert_eq!(c.try_admit(TenantId(3), 4), Ok(()));
        c.release(TenantId(3), 4);
        assert_eq!(c, before, "release must fully undo an admission");
    }
}
