//! Multi-tenant standing-query service: admission control, backpressure,
//! and deterministic overload handling over the online engines.
//!
//! This layer promotes the batch multi-query driver
//! ([`crate::online::multi`]) into a *long-lived service*: tenants submit
//! and retire standing SVAQ/SVAQD queries while one clip stream plays,
//! an [`AdmissionController`] enforces per-tenant quotas and global
//! capacity, and a bounded [`ShedQueue`] applies an explicit
//! [`OverloadPolicy`] when arrivals outpace the (simulated) evaluator.
//!
//! Three properties carry over from the rest of the engine and are tested
//! as hard invariants:
//!
//! 1. **One detector pass per frame**, regardless of standing-query count
//!    or churn — all engines share one [`InferenceCache`] through the
//!    [`ServiceHost`].
//! 2. **Bit-identical results**: an admitted query that is never shed
//!    produces exactly the [`OnlineResult`] a standalone
//!    [`OnlineEngine`](crate::online::OnlineEngine) produces over the
//!    same stream; the shed log and summary JSON are byte-identical for a
//!    given seed.
//! 3. **Crash safety**: [`StandingQueryService::checkpoint`] at a tick
//!    boundary captures registry, admission state, queue, and every
//!    engine ([`EngineCheckpoint`]-based); [`ServiceHost::restore`]
//!    resumes mid-stream with bit-identical remaining output.
//!
//! The driver functions at the bottom ([`run_service`],
//! [`checkpoint_service_at`], [`resume_service`]) replay a
//! [`ServiceEvent`] schedule against a [`SceneScript`] — the shape the
//! deterministic load/chaos generator in `vaq-datasets` and `vaq-cli
//! serve-sim` both target.
//!
//! [`InferenceCache`]: vaq_detect::InferenceCache
//! [`EngineCheckpoint`]: crate::online::EngineCheckpoint

mod queue;
mod registry;
#[allow(clippy::module_inception)]
mod service;
mod sync;
mod tenant;

pub use queue::{PushOutcome, ShedQueue};
pub use registry::{QueryId, QueryRegistry, QuerySpec, StandingEntry};
pub use service::{
    AdmissionAction, AdmissionEvent, CompletedQuery, LatencySummary, OverloadPolicy,
    ServiceCheckpoint, ServiceConfig, ServiceHost, ServiceReport, ShedCause, ShedEvent,
    StandingQueryService, TenantSummary, WorkItem,
};
pub use tenant::{
    query_weight, AdmissionController, RejectReason, ServiceLimits, TenantId, TenantQuota,
};

use serde::{Deserialize, Serialize};
use vaq_types::Result;
use vaq_video::{SceneScript, VideoStream};

/// One scheduled control-plane action, applied at a tick boundary
/// *before* that tick's clip is pushed. This is the vocabulary the
/// `vaq-datasets` load generator compiles its schedules down to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceEvent {
    /// Submit a standing query at the given tick.
    Submit {
        /// Tick boundary the submission lands on.
        tick: u64,
        /// What is submitted.
        spec: QuerySpec,
    },
    /// Retire the nth submission (by [`QueryId`]) at the given tick.
    /// Retiring a rejected or already-departed id is a no-op.
    Retire {
        /// Tick boundary the departure lands on.
        tick: u64,
        /// The submission to retire.
        query: QueryId,
    },
    /// Stall a tenant from this tick until `until_tick` (exclusive):
    /// its clips are shed as [`ShedCause::TenantStalled`] meanwhile.
    Stall {
        /// Tick boundary the stall starts at.
        tick: u64,
        /// The stalled tenant.
        tenant: TenantId,
        /// First live tick again.
        until_tick: u64,
    },
}

impl ServiceEvent {
    /// The tick boundary this event is applied at.
    pub fn tick(&self) -> u64 {
        match self {
            ServiceEvent::Submit { tick, .. }
            | ServiceEvent::Retire { tick, .. }
            | ServiceEvent::Stall { tick, .. } => *tick,
        }
    }
}

/// Applies every event scheduled for `tick`. Events must be sorted by
/// tick (the drivers walk them with a cursor).
fn apply_events_at(
    session: &mut StandingQueryService<'_>,
    events: &[ServiceEvent],
    cursor: &mut usize,
    tick: u64,
) -> Result<()> {
    while let Some(event) = events.get(*cursor) {
        if event.tick() > tick {
            break;
        }
        match event {
            ServiceEvent::Submit { spec, .. } => {
                // Rejection is a logged, non-fatal outcome.
                let _ = session.submit(spec.clone())?;
            }
            ServiceEvent::Retire { query, .. } => {
                session.retire(*query)?;
            }
            ServiceEvent::Stall {
                tenant, until_tick, ..
            } => {
                session.stall(*tenant, *until_tick);
            }
        }
        *cursor += 1;
    }
    Ok(())
}

/// Replays `events` (sorted by tick) against the full stream of `script`
/// and returns the finished report.
pub fn run_service(
    host: &ServiceHost<'_>,
    script: &SceneScript,
    events: &[ServiceEvent],
) -> Result<ServiceReport> {
    let mut session = host.session();
    let mut cursor = 0usize;
    for clip in VideoStream::new(script) {
        let tick = session.tick();
        apply_events_at(&mut session, events, &mut cursor, tick)?;
        session.push_clip(&clip)?;
    }
    apply_events_at(&mut session, events, &mut cursor, u64::MAX)?;
    session.finish()
}

/// [`run_service`], but snapshots the session at the `at_tick` boundary
/// (before that tick's events and clip) and abandons the run there.
/// Pair with [`resume_service`] for crash-recovery drills.
pub fn checkpoint_service_at(
    host: &ServiceHost<'_>,
    script: &SceneScript,
    events: &[ServiceEvent],
    at_tick: u64,
) -> Result<ServiceCheckpoint> {
    let mut session = host.session();
    let mut cursor = 0usize;
    for clip in VideoStream::new(script) {
        if session.tick() == at_tick {
            break;
        }
        let tick = session.tick();
        apply_events_at(&mut session, events, &mut cursor, tick)?;
        session.push_clip(&clip)?;
    }
    Ok(session.checkpoint())
}

/// Restores a checkpointed session against the same host, script, and
/// schedule, then plays the remaining stream to completion. The report's
/// tail — every decision from the checkpoint tick on — is bit-identical
/// to the uninterrupted [`run_service`] run.
pub fn resume_service(
    host: &ServiceHost<'_>,
    script: &SceneScript,
    events: &[ServiceEvent],
    checkpoint: &ServiceCheckpoint,
) -> Result<ServiceReport> {
    let mut session = host.restore(checkpoint)?;
    let from = checkpoint.tick;
    // Replay the event cursor past everything the checkpointed run
    // already applied (events strictly before the checkpoint tick).
    let mut cursor = events.iter().take_while(|e| e.tick() < from).count();
    for clip in VideoStream::new(script) {
        let idx = clip.id.raw();
        if idx < from {
            // Clips the queue still references must be re-materialized;
            // everything older is already folded into engine state.
            session.prime_clip(&clip);
            continue;
        }
        let tick = session.tick();
        apply_events_at(&mut session, events, &mut cursor, tick)?;
        session.push_clip(&clip)?;
    }
    apply_events_at(&mut session, events, &mut cursor, u64::MAX)?;
    session.finish()
}
