//! The standing-query service session: admission → bounded queue →
//! engine evaluation, all on simulated time.
//!
//! # Determinism contract (DESIGN.md §13)
//!
//! Every service decision — admit/reject, shed victim selection, deadline
//! timeouts, delivery latencies — is a pure function of the submission
//! schedule, the stream, and the configuration. Time is *simulated*
//! integer microseconds: a clip arrives at `tick × tick_us`, and the
//! single logical evaluator accumulates the engines' own simulated
//! inference milliseconds (plus a fixed per-item overhead) into
//! `busy_until`. No wall clock, no randomness, no hash-order iteration
//! anywhere on a decision path; the shed log and summary JSON are
//! byte-identical across runs and across checkpoint/restore.
//!
//! # Overload semantics
//!
//! Work items queue between stream ingestion and evaluation in a bounded
//! [`ShedQueue`]. When a clip arrives for a standing query and the queue
//! is full, the configured [`OverloadPolicy`] applies:
//!
//! * [`RejectNew`](OverloadPolicy::RejectNew) — the arriving item is shed;
//! * [`ShedLowestPriority`](OverloadPolicy::ShedLowestPriority) — the
//!   youngest strictly-lower-priority queued item is evicted in its
//!   favor, else the arrival is shed;
//! * [`Degrade`](OverloadPolicy::Degrade) — the arrival stream is thinned
//!   to every `keep_every`-th clip; survivors may overshoot the bound.
//!
//! A shed clip is not silently skipped: the owning engine records it via
//! [`OnlineEngine::push_gap`] as a typed [`GapReason::Shed`] /
//! [`GapReason::DeadlineExceeded`] gap, so clip positions stay aligned
//! with the stream and downstream consumers see *why* there is no answer
//! — the same fault-transparency discipline as DESIGN.md §8. Because the
//! service degrades by gapping, engines configured with
//! [`DegradationPolicy::Abort`] are rejected at host construction: a
//! fail-stop engine cannot live behind a shedding queue.

use super::queue::{PushOutcome, ShedQueue};
use super::registry::{QueryId, QueryRegistry, QuerySpec, StandingEntry};
use super::tenant::{query_weight, AdmissionController, RejectReason, ServiceLimits, TenantId};
use crate::config::{DegradationPolicy, OnlineConfig};
use crate::online::engine::{EngineCheckpoint, OnlineEngine, OnlineResult, SharedScanCaches};
use crate::online::indicator::GapReason;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trace::Tracer;
use vaq_detect::{
    ActionRecognizer, CacheStats, CachedActionRecognizer, CachedObjectDetector, InferenceCache,
    InferenceStats, ObjectDetector,
};
use vaq_types::{conv, ClipId, Result, VaqError, VideoGeometry};
use vaq_video::ClipView;

/// What the service does when a clip arrives for a standing query and the
/// backpressure queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadPolicy {
    /// Shed the arriving item; queued work is never disturbed.
    RejectNew,
    /// Evict the youngest strictly-lower-priority queued item in favor of
    /// the arrival; shed the arrival if no such victim exists.
    ShedLowestPriority,
    /// Thin every query's clip stream to one clip in `keep_every` while
    /// the queue is full; kept clips enqueue past the bound.
    Degrade {
        /// Keep every `keep_every`-th clip (by clip index); minimum 1.
        keep_every: u32,
    },
}

impl std::fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverloadPolicy::RejectNew => write!(f, "reject-new"),
            OverloadPolicy::ShedLowestPriority => write!(f, "shed-lowest-priority"),
            OverloadPolicy::Degrade { keep_every } => write!(f, "degrade/{keep_every}"),
        }
    }
}

/// Service-level configuration: capacity, backpressure, deadlines, and
/// the one engine configuration all standing queries run under (shared
/// critical-value caches require a single scan configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Admission capacity and per-tenant quotas.
    pub limits: ServiceLimits,
    /// Backpressure queue bound, in work items (clip × query).
    pub queue_capacity: usize,
    /// What happens to arrivals when the queue is full.
    pub overload: OverloadPolicy,
    /// Queue-wait budget in simulated µs for queries that don't set one.
    /// An item whose evaluation would *start* later than this after its
    /// arrival is dropped as a [`GapReason::DeadlineExceeded`] gap.
    pub default_deadline_us: u64,
    /// Fixed simulated bookkeeping cost added per evaluated item, µs.
    pub per_item_overhead_us: u64,
    /// Simulated cost per detector frame the engine *requests*, µs.
    ///
    /// Cost is charged on requested work (frames/shots the engine asked
    /// for) rather than executed work, deliberately: which frames an
    /// engine requests is a pure function of its own checkpointed state,
    /// while executed-vs-cached depends on what *other* tenants evaluated
    /// first — charging executions would make timeout decisions depend on
    /// shared-cache state that a checkpoint does not (and should not)
    /// carry, breaking bit-identical resume.
    pub frame_cost_us: u64,
    /// Simulated cost per recognizer shot the engine requests, µs.
    pub shot_cost_us: u64,
    /// Engine configuration shared by every standing query.
    pub engine: OnlineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            limits: ServiceLimits::default(),
            queue_capacity: 64,
            overload: OverloadPolicy::RejectNew,
            default_deadline_us: 2_000_000,
            per_item_overhead_us: 200,
            frame_cost_us: 20_000,
            shot_cost_us: 40_000,
            engine: OnlineConfig::svaqd(),
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration. Engines behind a shedding queue must
    /// be able to degrade: `Abort` is rejected here rather than letting
    /// the first shed turn into a service-wide failure.
    pub fn validate(&self) -> Result<()> {
        self.engine.validate()?;
        if self.engine.degradation == DegradationPolicy::Abort {
            return Err(VaqError::InvalidConfig(
                "service engines cannot use DegradationPolicy::Abort: overload \
                 sheds clips as gaps, which a fail-stop engine cannot represent"
                    .into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(VaqError::InvalidConfig(
                "service queue_capacity must be at least 1".into(),
            ));
        }
        if self.default_deadline_us == 0 {
            return Err(VaqError::InvalidConfig(
                "service default_deadline_us must be positive".into(),
            ));
        }
        if let OverloadPolicy::Degrade { keep_every } = self.overload {
            if keep_every == 0 {
                return Err(VaqError::InvalidConfig(
                    "Degrade keep_every must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Why a work item was dropped instead of evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedCause {
    /// Queue full under [`OverloadPolicy::RejectNew`] (or no victim under
    /// shed-lowest-priority).
    QueueFull,
    /// Evicted from the queue by a higher-priority arrival.
    PriorityEvicted,
    /// Thinned out by [`OverloadPolicy::Degrade`].
    Degraded,
    /// Queue wait exceeded the query's deadline.
    DeadlineExceeded,
    /// The owning tenant was stalled when the clip arrived.
    TenantStalled,
    /// The query departed while the item was still queued.
    Departed,
}

impl ShedCause {
    /// The typed gap the owning engine records for this shed.
    pub fn gap_reason(self) -> GapReason {
        match self {
            ShedCause::DeadlineExceeded => GapReason::DeadlineExceeded,
            _ => GapReason::Shed,
        }
    }
}

impl std::fmt::Display for ShedCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShedCause::QueueFull => "queue-full",
            ShedCause::PriorityEvicted => "priority-evicted",
            ShedCause::Degraded => "degraded",
            ShedCause::DeadlineExceeded => "deadline-exceeded",
            ShedCause::TenantStalled => "tenant-stalled",
            ShedCause::Departed => "departed",
        };
        write!(f, "{s}")
    }
}

/// One shed decision, in decision order. The shed log is part of the
/// determinism contract: same schedule, same stream, same config ⇒
/// byte-identical log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedEvent {
    /// Tick at which the decision was made.
    pub tick: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// The query whose clip was dropped.
    pub query: QueryId,
    /// The dropped clip index.
    pub clip: u64,
    /// Why it was dropped.
    pub cause: ShedCause,
}

/// Admission-path actions, logged in decision order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionAction {
    /// Submission admitted at the stated weight.
    Admitted {
        /// Detector-budget weight charged.
        weight: u64,
    },
    /// Submission rejected.
    Rejected {
        /// The failing admission gate.
        reason: RejectReason,
    },
    /// Standing query departed; `pending_dropped` queued items died with
    /// it.
    Departed {
        /// Queued items dropped at departure.
        pending_dropped: u64,
    },
    /// Tenant stalled until the stated tick (exclusive).
    Stalled {
        /// First tick at which the tenant is live again.
        until_tick: u64,
    },
}

/// One admission-path event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionEvent {
    /// Tick of the decision.
    pub tick: u64,
    /// The tenant involved.
    pub tenant: TenantId,
    /// The submission involved (absent for tenant-level events).
    pub query: Option<QueryId>,
    /// What happened.
    pub action: AdmissionAction,
}

/// Per-tenant service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// Submissions admitted.
    pub admitted: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Work items shed (all causes except deadline timeouts).
    pub shed: u64,
    /// Items dropped on deadline.
    pub timeouts: u64,
    /// Items evaluated and delivered.
    pub delivered: u64,
    /// Delivered items whose completion exceeded the deadline (started in
    /// time, finished late).
    pub late: u64,
}

/// Delivery-latency digest over all delivered items, simulated µs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Items delivered.
    pub delivered: u64,
    /// Items delivered past their deadline.
    pub late: u64,
    /// Median delivery latency (nearest-rank).
    pub p50_us: u64,
    /// 95th-percentile delivery latency (nearest-rank).
    pub p95_us: u64,
    /// 99th-percentile delivery latency (nearest-rank).
    pub p99_us: u64,
    /// Worst delivery latency.
    pub max_us: u64,
}

/// A standing query's final output once it left the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedQuery {
    /// Submission identity.
    pub id: QueryId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Tick the query was admitted.
    pub admitted_tick: u64,
    /// Tick the query departed; `None` if it ran to the end of the
    /// schedule.
    pub retired_tick: Option<u64>,
    /// The engine's result over the clips it saw (including shed gaps).
    pub result: OnlineResult,
}

/// Everything a finished service run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Ticks (clips) processed.
    pub ticks: u64,
    /// Completed queries in submission order.
    pub completed: Vec<CompletedQuery>,
    /// Every shed decision, in decision order.
    pub shed_log: Vec<ShedEvent>,
    /// Every admission decision, in decision order.
    pub admission_log: Vec<AdmissionEvent>,
    /// Delivery-latency digest.
    pub latency: LatencySummary,
    /// Per-tenant counters, in tenant order.
    pub tenants: BTreeMap<TenantId, TenantSummary>,
    /// All engines' cost accounting merged.
    pub stats: InferenceStats,
    /// Shared inference-cache counters.
    pub cache: CacheStats,
}

impl ServiceReport {
    /// The shed log as text, one line per decision — the byte-identical
    /// artifact the determinism tests compare.
    pub fn shed_log_text(&self) -> String {
        let mut out = String::new();
        for e in &self.shed_log {
            out.push_str(&format!(
                "tick={} tenant={} query={} clip={} cause={}\n",
                e.tick, e.tenant, e.query, e.clip, e.cause
            ));
        }
        out
    }

    /// Canonical summary JSON (stable key order, no wall-clock fields) —
    /// the second byte-identical artifact. Wall-clock `engine_ms` is
    /// deliberately absent: everything here is simulated and must
    /// reproduce exactly.
    pub fn summary_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        let admitted: u64 = self.tenants.values().map(|t| t.admitted).sum();
        let rejected: u64 = self.tenants.values().map(|t| t.rejected).sum();
        let shed: u64 = self.tenants.values().map(|t| t.shed).sum();
        let timeouts: u64 = self.tenants.values().map(|t| t.timeouts).sum();
        s.push_str(&format!(
            "  \"queries\": {{\"admitted\": {}, \"rejected\": {}, \"completed\": {}}},\n",
            admitted,
            rejected,
            self.completed.len()
        ));
        s.push_str(&format!(
            "  \"sheds\": {{\"total\": {}, \"timeouts\": {}}},\n",
            shed, timeouts
        ));
        s.push_str(&format!(
            "  \"latency_us\": {{\"delivered\": {}, \"late\": {}, \"p50\": {}, \"p95\": {}, \
             \"p99\": {}, \"max\": {}}},\n",
            self.latency.delivered,
            self.latency.late,
            self.latency.p50_us,
            self.latency.p95_us,
            self.latency.p99_us,
            self.latency.max_us
        ));
        s.push_str("  \"tenants\": {\n");
        let mut first = true;
        for (tenant, t) in &self.tenants {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!(
                "    \"{}\": {{\"admitted\": {}, \"rejected\": {}, \"shed\": {}, \
                 \"timeouts\": {}, \"delivered\": {}, \"late\": {}}}",
                tenant, t.admitted, t.rejected, t.shed, t.timeouts, t.delivered, t.late
            ));
        }
        s.push_str("\n  },\n");
        s.push_str(&format!(
            "  \"inference\": {{\"detector_frames\": {}, \"detector_cached\": {}, \
             \"recognizer_shots\": {}, \"recognizer_cached\": {}, \"clips_gapped\": {}}},\n",
            self.stats.detector_frames,
            self.stats.detector_cached,
            self.stats.recognizer_shots,
            self.stats.recognizer_cached,
            self.stats.clips_gapped
        ));
        s.push_str(&format!(
            "  \"cache\": {{\"detector_hits\": {}, \"detector_misses\": {}, \
             \"recognizer_hits\": {}, \"recognizer_misses\": {}}}\n",
            self.cache.detector_hits,
            self.cache.detector_misses,
            self.cache.recognizer_hits,
            self.cache.recognizer_misses
        ));
        s.push('}');
        s
    }
}

/// One queued unit of work: one clip for one standing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// The standing query.
    pub query: QueryId,
    /// Clip index in the stream.
    pub clip: u64,
    /// Simulated arrival time, µs.
    pub arrival_us: u64,
    /// Shed priority (copied from the spec for eviction decisions).
    pub priority: u8,
}

/// Crash-safe snapshot of a whole service session at a tick boundary,
/// built on the per-engine [`EngineCheckpoint`]s. Restoring against the
/// same host configuration and stream resumes bit-identically: the
/// remaining ticks produce exactly the output the uninterrupted run
/// would have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCheckpoint {
    /// Next tick to process.
    pub tick: u64,
    busy_until_us: u64,
    registry: QueryRegistry,
    admission: AdmissionController,
    engines: Vec<(QueryId, EngineCheckpoint)>,
    gap_backlog: Vec<(QueryId, Vec<(u64, GapReason)>)>,
    queued: Vec<WorkItem>,
    stalls: Vec<(TenantId, u64)>,
    completed: Vec<CompletedQuery>,
    shed_log: Vec<ShedEvent>,
    admission_log: Vec<AdmissionEvent>,
    latency_samples_us: Vec<u64>,
    late: u64,
    tenants: BTreeMap<TenantId, TenantSummary>,
}

impl ServiceCheckpoint {
    /// Serializes the checkpoint to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| VaqError::Storage(format!("service checkpoint serialization failed: {e}")))
    }

    /// Parses a checkpoint from JSON produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json)
            .map_err(|e| VaqError::Storage(format!("service checkpoint parse failed: {e}")))
    }

    /// Smallest clip index still referenced by a queued item, if any —
    /// the stream position a resuming driver must re-materialize clips
    /// from.
    pub fn min_queued_clip(&self) -> Option<u64> {
        self.queued.iter().map(|w| w.clip).min()
    }
}

/// Shared infrastructure every session borrows: the inference cache
/// wrappers (one detector pass per frame across *all* standing queries),
/// the critical-value caches, geometry, and configuration.
///
/// Split from [`StandingQueryService`] so the engines — which borrow the
/// cached models — never borrow from their own container.
pub struct ServiceHost<'m> {
    detector: CachedObjectDetector<'m>,
    recognizer: CachedActionRecognizer<'m>,
    cache: &'m InferenceCache,
    scan_caches: SharedScanCaches,
    geometry: VideoGeometry,
    config: ServiceConfig,
    tracer: Tracer,
}

impl<'m> ServiceHost<'m> {
    /// Builds a host over a caller-owned inference cache and models.
    pub fn new(
        cache: &'m InferenceCache,
        detector: &'m dyn ObjectDetector,
        recognizer: &'m dyn ActionRecognizer,
        geometry: &VideoGeometry,
        config: ServiceConfig,
    ) -> Result<Self> {
        Self::new_traced(
            cache,
            detector,
            recognizer,
            geometry,
            config,
            Tracer::disabled(),
        )
    }

    /// [`Self::new`] with telemetry: admission, shed, timeout, and
    /// delivery decisions emit `service.*` counters and the
    /// `service.delivery` latency histogram; engines emit their usual
    /// `online.*` / `detect.*` instrumentation. Results are bit-identical
    /// to the untraced host.
    pub fn new_traced(
        cache: &'m InferenceCache,
        detector: &'m dyn ObjectDetector,
        recognizer: &'m dyn ActionRecognizer,
        geometry: &VideoGeometry,
        config: ServiceConfig,
        tracer: Tracer,
    ) -> Result<Self> {
        config.validate()?;
        let scan_caches = SharedScanCaches::new_traced(&config.engine, geometry, &tracer)?;
        Ok(Self {
            detector: cache.detector(detector),
            recognizer: cache.recognizer(recognizer),
            cache,
            scan_caches,
            geometry: *geometry,
            config,
            tracer,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Stream geometry the host serves.
    pub fn geometry(&self) -> &VideoGeometry {
        &self.geometry
    }

    /// Shared inference-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Simulated duration of one tick (one clip of stream time), µs.
    pub fn tick_us(&self) -> u64 {
        self.geometry.frames_per_clip() * 1_000_000 / conv::u64_of(self.geometry.fps)
    }

    /// Starts an empty session.
    pub fn session(&'m self) -> StandingQueryService<'m> {
        StandingQueryService {
            host: self,
            registry: QueryRegistry::new(),
            admission: AdmissionController::new(self.config.limits.clone()),
            engines: BTreeMap::new(),
            gap_backlog: BTreeMap::new(),
            queue: ShedQueue::new(self.config.queue_capacity),
            clip_window: BTreeMap::new(),
            stalls: BTreeMap::new(),
            busy_until_us: 0,
            tick: 0,
            completed: Vec::new(),
            shed_log: Vec::new(),
            admission_log: Vec::new(),
            latency_samples_us: Vec::new(),
            late: 0,
            tenants: BTreeMap::new(),
        }
    }

    /// Rebuilds a session from a [`ServiceCheckpoint`] taken against the
    /// same configuration and stream. Engines are restored through
    /// [`OnlineEngine::restore`]; queued work is re-enqueued in FIFO
    /// order. The caller must re-prime clips still referenced by the
    /// queue (see [`StandingQueryService::prime_clip`] and
    /// [`ServiceCheckpoint::min_queued_clip`]).
    pub fn restore(&'m self, checkpoint: &ServiceCheckpoint) -> Result<StandingQueryService<'m>> {
        let mut session = self.session();
        session.registry = checkpoint.registry.clone();
        session.admission = checkpoint.admission.clone();
        for (id, engine_ckpt) in &checkpoint.engines {
            let entry = session.registry.get(*id).ok_or_else(|| {
                VaqError::InvalidConfig(format!(
                    "service checkpoint engine {id} has no registry entry"
                ))
            })?;
            let mut engine = OnlineEngine::restore(
                entry.spec.query.clone(),
                self.config.engine,
                &self.geometry,
                &self.detector,
                &self.recognizer,
                engine_ckpt,
            )?;
            engine.set_tracer(self.tracer.clone());
            session.engines.insert(*id, engine);
        }
        for (id, gaps) in &checkpoint.gap_backlog {
            session.gap_backlog.insert(*id, gaps.clone());
        }
        for item in &checkpoint.queued {
            session.queue.push_unbounded(*item, item.priority);
        }
        session.stalls = checkpoint.stalls.iter().copied().collect();
        session.busy_until_us = checkpoint.busy_until_us;
        session.tick = checkpoint.tick;
        session.completed = checkpoint.completed.clone();
        session.shed_log = checkpoint.shed_log.clone();
        session.admission_log = checkpoint.admission_log.clone();
        session.latency_samples_us = checkpoint.latency_samples_us.clone();
        session.late = checkpoint.late;
        session.tenants = checkpoint.tenants.clone();
        Ok(session)
    }
}

/// A live service session: the registry of standing queries, their
/// engines, and the backpressure queue, driven tick by tick.
pub struct StandingQueryService<'m> {
    host: &'m ServiceHost<'m>,
    registry: QueryRegistry,
    admission: AdmissionController,
    engines: BTreeMap<QueryId, OnlineEngine<'m>>,
    /// Shed decisions not yet applied to their engine (applied lazily in
    /// clip order, interleaved with queued evaluations).
    gap_backlog: BTreeMap<QueryId, Vec<(u64, GapReason)>>,
    queue: ShedQueue<WorkItem>,
    /// Clips still referenced by queued items, keyed by clip index.
    clip_window: BTreeMap<u64, ClipView>,
    /// Stalled tenants → first live tick (exclusive end of the stall).
    stalls: BTreeMap<TenantId, u64>,
    busy_until_us: u64,
    tick: u64,
    completed: Vec<CompletedQuery>,
    shed_log: Vec<ShedEvent>,
    admission_log: Vec<AdmissionEvent>,
    latency_samples_us: Vec<u64>,
    late: u64,
    tenants: BTreeMap<TenantId, TenantSummary>,
}

impl<'m> StandingQueryService<'m> {
    /// Next tick to process.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Standing queries currently admitted.
    pub fn standing(&self) -> usize {
        self.registry.len()
    }

    /// Work items currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Submits a query. Returns `Ok(Err(reason))` on a (normal,
    /// non-fatal) admission rejection; `Err` only for structural failures
    /// (invalid query/config).
    pub fn submit(
        &mut self,
        spec: QuerySpec,
    ) -> Result<std::result::Result<QueryId, RejectReason>> {
        let id = self.registry.next_submission_id();
        let tenant = spec.tenant;
        let weight = query_weight(&spec.query);
        self.host.tracer.counter_add("service.submitted", 1);
        if let Err(reason) = self.admission.try_admit(tenant, weight) {
            self.tenants.entry(tenant).or_default().rejected += 1;
            self.admission_log.push(AdmissionEvent {
                tick: self.tick,
                tenant,
                query: Some(id),
                action: AdmissionAction::Rejected { reason },
            });
            self.host.tracer.counter_add("service.rejected", 1);
            return Ok(Err(reason));
        }
        let engine = match OnlineEngine::with_shared_caches(
            spec.query.clone(),
            self.host.config.engine,
            &self.host.geometry,
            &self.host.detector,
            &self.host.recognizer,
            &self.host.scan_caches,
        ) {
            Ok(engine) => engine.with_tracer(self.host.tracer.clone()),
            Err(e) => {
                self.admission.release(tenant, weight);
                return Err(e);
            }
        };
        self.engines.insert(id, engine);
        self.registry.insert(StandingEntry {
            id,
            spec,
            weight,
            admitted_tick: self.tick,
        });
        self.tenants.entry(tenant).or_default().admitted += 1;
        self.admission_log.push(AdmissionEvent {
            tick: self.tick,
            tenant,
            query: Some(id),
            action: AdmissionAction::Admitted { weight },
        });
        self.host.tracer.counter_add("service.admitted", 1);
        Ok(Ok(id))
    }

    /// Retires a standing query: drops its queued items, applies pending
    /// shed gaps, finalizes its engine, and releases its admission
    /// capacity. Returns whether the id was standing.
    pub fn retire(&mut self, id: QueryId) -> Result<bool> {
        let Some(entry) = self.registry.remove(id) else {
            return Ok(false);
        };
        let mut dropped = Vec::new();
        while let Some(item) = self.queue.pop_if(|w| w.query == id) {
            dropped.push(item);
        }
        // `pop_if` only sees the head; sweep the rest by draining into a
        // keep-list (capacity is small, this is O(queue)).
        let mut keep = Vec::new();
        while let Some(item) = self.queue.try_pop() {
            if item.query == id {
                dropped.push(item);
            } else {
                keep.push(item);
            }
        }
        for item in keep {
            self.queue.push_unbounded(item, item.priority);
        }
        let tenant = entry.spec.tenant;
        for item in &dropped {
            self.shed(self.tick, tenant, id, item.clip, ShedCause::Departed);
        }
        self.finalize(entry, Some(self.tick))?;
        self.admission_log.push(AdmissionEvent {
            tick: self.tick,
            tenant,
            query: Some(id),
            action: AdmissionAction::Departed {
                pending_dropped: conv::len_u64(dropped.len()),
            },
        });
        self.host.tracer.counter_add("service.retired", 1);
        Ok(true)
    }

    /// Stalls a tenant until `until_tick` (exclusive): its standing
    /// queries' arriving clips are shed as [`ShedCause::TenantStalled`]
    /// while the stall lasts. Other tenants are untouched.
    pub fn stall(&mut self, tenant: TenantId, until_tick: u64) {
        let entry = self.stalls.entry(tenant).or_insert(0);
        *entry = (*entry).max(until_tick);
        self.admission_log.push(AdmissionEvent {
            tick: self.tick,
            tenant,
            query: None,
            action: AdmissionAction::Stalled { until_tick },
        });
    }

    /// Re-materializes a clip a restored queue still references. Only
    /// clips named by queued items are retained.
    pub fn prime_clip(&mut self, clip: &ClipView) {
        let idx = clip.id.raw();
        let mut referenced = false;
        // Snapshot-free scan: freeze/unfreeze is the only consistent read
        // of the queue, and this runs only during restore (queue idle).
        for item in self.queue.freeze_snapshot() {
            if item.clip == idx {
                referenced = true;
                break;
            }
        }
        self.queue.unfreeze();
        if referenced {
            self.clip_window.insert(idx, clip.clone());
        }
    }

    /// Processes one stream tick: serves queued work whose simulated
    /// start time has arrived, then enqueues this clip for every live
    /// standing query under the overload policy.
    ///
    /// Clips must arrive in stream order, one per tick.
    pub fn push_clip(&mut self, clip: &ClipView) -> Result<()> {
        let t = self.tick;
        if clip.id.raw() != t {
            return Err(VaqError::InvalidConfig(format!(
                "service expects clip {t} next, got clip {}",
                clip.id.raw()
            )));
        }
        let arrival_us = t.saturating_mul(self.host.tick_us());
        self.serve_until(arrival_us)?;
        self.clip_window.insert(t, clip.clone());

        for id in self.registry.ids() {
            let Some(entry) = self.registry.get(id) else {
                continue;
            };
            let tenant = entry.spec.tenant;
            let priority = entry.spec.priority;
            if self.stalls.get(&tenant).is_some_and(|&until| t < until) {
                self.shed(t, tenant, id, t, ShedCause::TenantStalled);
                continue;
            }
            let item = WorkItem {
                query: id,
                clip: t,
                arrival_us,
                priority,
            };
            if self.queue.len() < self.queue.capacity() {
                match self.queue.push(item, priority) {
                    PushOutcome::Enqueued => {}
                    // Unreachable single-threaded; shed defensively.
                    _ => self.shed(t, tenant, id, t, ShedCause::QueueFull),
                }
                continue;
            }
            match self.host.config.overload {
                OverloadPolicy::RejectNew => {
                    self.shed(t, tenant, id, t, ShedCause::QueueFull);
                }
                OverloadPolicy::ShedLowestPriority => {
                    match self.queue.push_evicting(item, priority) {
                        PushOutcome::Enqueued => {}
                        PushOutcome::RejectedFull(_) => {
                            self.shed(t, tenant, id, t, ShedCause::QueueFull);
                        }
                        PushOutcome::Evicted { victim } => {
                            let victim_tenant = self
                                .registry
                                .get(victim.query)
                                .map_or(TenantId(0), |e| e.spec.tenant);
                            self.shed(
                                t,
                                victim_tenant,
                                victim.query,
                                victim.clip,
                                ShedCause::PriorityEvicted,
                            );
                        }
                    }
                }
                OverloadPolicy::Degrade { keep_every } => {
                    if t % u64::from(keep_every.max(1)) == 0 {
                        self.queue.push_unbounded(item, priority);
                    } else {
                        self.shed(t, tenant, id, t, ShedCause::Degraded);
                    }
                }
            }
        }
        self.evict_clip_window();
        self.tick = t + 1;
        Ok(())
    }

    /// Serves the rest of the queue, finalizes every standing query, and
    /// produces the report.
    pub fn finish(mut self) -> Result<ServiceReport> {
        self.serve_until(u64::MAX)?;
        for id in self.registry.ids() {
            if let Some(entry) = self.registry.remove(id) {
                self.finalize(entry, None)?;
            }
        }
        self.completed.sort_by_key(|c| c.id);
        let mut stats = InferenceStats::default();
        for c in &self.completed {
            stats.merge(&c.result.stats);
        }
        let latency = Self::latency_summary(&mut self.latency_samples_us, self.late);
        Ok(ServiceReport {
            ticks: self.tick,
            completed: self.completed,
            shed_log: self.shed_log,
            admission_log: self.admission_log,
            latency,
            tenants: self.tenants,
            stats,
            cache: self.host.cache_stats(),
        })
    }

    /// Snapshots the full session at the current tick boundary. The queue
    /// is frozen for the duration of the snapshot (loom-checked: freeze
    /// cannot deadlock against concurrent pushes or sheds).
    pub fn checkpoint(&self) -> ServiceCheckpoint {
        let queued = self.queue.freeze_snapshot();
        let checkpoint = ServiceCheckpoint {
            tick: self.tick,
            busy_until_us: self.busy_until_us,
            registry: self.registry.clone(),
            admission: self.admission.clone(),
            engines: self
                .engines
                .iter()
                .map(|(id, e)| (*id, e.checkpoint()))
                .collect(),
            gap_backlog: self
                .gap_backlog
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(id, v)| (*id, v.clone()))
                .collect(),
            queued,
            stalls: self.stalls.iter().map(|(t, u)| (*t, *u)).collect(),
            completed: self.completed.clone(),
            shed_log: self.shed_log.clone(),
            admission_log: self.admission_log.clone(),
            latency_samples_us: self.latency_samples_us.clone(),
            late: self.late,
            tenants: self.tenants.clone(),
        };
        self.queue.unfreeze();
        checkpoint
    }

    fn shed(&mut self, tick: u64, tenant: TenantId, query: QueryId, clip: u64, cause: ShedCause) {
        self.gap_backlog
            .entry(query)
            .or_default()
            .push((clip, cause.gap_reason()));
        self.shed_log.push(ShedEvent {
            tick,
            tenant,
            query,
            clip,
            cause,
        });
        let summary = self.tenants.entry(tenant).or_default();
        if cause == ShedCause::DeadlineExceeded {
            summary.timeouts += 1;
            self.host.tracer.counter_add("service.timeout", 1);
        } else {
            summary.shed += 1;
            self.host.tracer.counter_add("service.shed", 1);
        }
    }

    /// Applies pending shed gaps for `query` with clip index `< before`
    /// to its engine, in clip order.
    fn apply_gaps_before(&mut self, query: QueryId, before: u64) {
        let Some(pending) = self.gap_backlog.get_mut(&query) else {
            return;
        };
        let Some(engine) = self.engines.get_mut(&query) else {
            return;
        };
        let mut rest = Vec::new();
        for (clip, reason) in pending.drain(..) {
            if clip < before {
                engine.push_gap(ClipId::new(clip), reason);
            } else {
                rest.push((clip, reason));
            }
        }
        *pending = rest;
    }

    /// Serves queued items whose simulated start time is before `now_us`.
    fn serve_until(&mut self, now_us: u64) -> Result<()> {
        loop {
            let busy = self.busy_until_us;
            let Some(item) = self.queue.pop_if(|w| busy.max(w.arrival_us) < now_us) else {
                return Ok(());
            };
            self.serve_item(item)?;
        }
    }

    fn serve_item(&mut self, item: WorkItem) -> Result<()> {
        let Some(entry) = self.registry.get(item.query) else {
            // Retired while queued — already logged as Departed.
            return Ok(());
        };
        let tenant = entry.spec.tenant;
        let deadline = entry
            .spec
            .deadline_us
            .unwrap_or(self.host.config.default_deadline_us);
        let start = self.busy_until_us.max(item.arrival_us);
        let wait = start - item.arrival_us;
        self.apply_gaps_before(item.query, item.clip);
        if wait > deadline {
            // Dropping is free: the evaluator never touches the item.
            let decision_tick = self.tick;
            self.shed(
                decision_tick,
                tenant,
                item.query,
                item.clip,
                ShedCause::DeadlineExceeded,
            );
            self.apply_gaps_before(item.query, item.clip + 1);
            return Ok(());
        }
        let clip = self.clip_window.get(&item.clip).cloned().ok_or_else(|| {
            VaqError::InvalidConfig(format!(
                "service clip window no longer holds clip {} needed by {}",
                item.clip, item.query
            ))
        })?;
        let Some(engine) = self.engines.get_mut(&item.query) else {
            return Ok(());
        };
        let before = *engine.stats();
        engine.try_push_clip(&clip)?;
        let after = *engine.stats();
        // Requested work = executed + cache-served; see `frame_cost_us`.
        let frames = (after.detector_frames + after.detector_cached)
            .saturating_sub(before.detector_frames + before.detector_cached);
        let shots = (after.recognizer_shots + after.recognizer_cached)
            .saturating_sub(before.recognizer_shots + before.recognizer_cached);
        let cost_us = self
            .host
            .config
            .per_item_overhead_us
            .saturating_add(frames.saturating_mul(self.host.config.frame_cost_us))
            .saturating_add(shots.saturating_mul(self.host.config.shot_cost_us));
        self.busy_until_us = start.saturating_add(cost_us);
        let latency = self.busy_until_us - item.arrival_us;
        self.latency_samples_us.push(latency);
        let summary = self.tenants.entry(tenant).or_default();
        summary.delivered += 1;
        if latency > deadline {
            summary.late += 1;
            self.late += 1;
            self.host.tracer.counter_add("service.late", 1);
        }
        self.host.tracer.counter_add("service.delivered", 1);
        self.host
            .tracer
            .record_duration_ns("service.delivery", latency.saturating_mul(1_000));
        Ok(())
    }

    fn finalize(&mut self, entry: StandingEntry, retired_tick: Option<u64>) -> Result<()> {
        // Any still-pending shed gaps happen-after every queued item for
        // this query (queued items were purged or served first).
        self.apply_gaps_before(entry.id, u64::MAX);
        self.gap_backlog.remove(&entry.id);
        let engine = self.engines.remove(&entry.id).ok_or_else(|| {
            VaqError::InvalidConfig(format!("standing query {} has no engine", entry.id))
        })?;
        self.admission.release(entry.spec.tenant, entry.weight);
        self.completed.push(CompletedQuery {
            id: entry.id,
            tenant: entry.spec.tenant,
            admitted_tick: entry.admitted_tick,
            retired_tick,
            result: engine.into_result(),
        });
        Ok(())
    }

    fn evict_clip_window(&mut self) {
        let min_needed = self
            .queue
            .freeze_snapshot()
            .iter()
            .map(|w| w.clip)
            .min()
            .unwrap_or(self.tick + 1);
        self.queue.unfreeze();
        self.clip_window.retain(|&c, _| c >= min_needed);
    }

    fn latency_summary(samples: &mut [u64], late: u64) -> LatencySummary {
        samples.sort_unstable();
        let n = conv::len_u64(samples.len());
        let rank = |p: u64| -> u64 {
            if n == 0 {
                return 0;
            }
            // Nearest-rank percentile on the sorted samples.
            let idx = (n * p).div_ceil(100).max(1) - 1;
            conv::index(idx)
                .and_then(|i| samples.get(i))
                .copied()
                .unwrap_or(0)
        };
        LatencySummary {
            delivered: n,
            late,
            p50_us: rank(50),
            p95_us: rank(95),
            p99_us: rank(99),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }
}
