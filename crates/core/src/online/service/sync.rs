//! Synchronization facade: `std::sync` in normal builds, the deterministic
//! [`vaq-loom`] interleaving explorer under `--cfg loom`.
//!
//! The service's admission/backpressure queue imports its lock and condvar
//! from here so the loom model-checking suite (`tests/loom_service.rs`,
//! run with `RUSTFLAGS="--cfg loom" cargo test -p vaq-core --test
//! loom_service`) exercises the exact same shed/checkpoint code under
//! every explored interleaving.
//!
//! [`vaq-loom`]: ../../../loom/index.html

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};
