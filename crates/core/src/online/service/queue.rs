//! The bounded backpressure queue between stream ingestion and engine
//! evaluation.
//!
//! [`ShedQueue`] is deliberately mechanical: it enqueues, evicts by
//! priority, freezes for checkpoints, and wakes consumers — *policy*
//! (which of reject/shed/degrade applies, what counts as overload) lives
//! in the service tick loop, which drives the queue deterministically.
//! The queue is nonetheless a real concurrent structure (mutex + condvar
//! from the [`super::sync`] facade): the loom suite model-checks that
//! pushes, sheds, closes, and checkpoint freezes can interleave from
//! multiple threads without lost wakeups or deadlock, so the same type is
//! safe to drive from a threaded ingestion front-end.
//!
//! Ordering contract: consumers see items in FIFO arrival order. Priority
//! affects only *eviction* (who gets shed under pressure), not service
//! order — reordering service by priority would break the per-query
//! in-stream-order delivery the engines require.

use super::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;

/// What happened to a push against a full queue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome<T> {
    /// The item is in the queue.
    Enqueued,
    /// The queue was full and no lower-priority victim existed; the item
    /// is handed back.
    RejectedFull(T),
    /// The item is in the queue; `victim` (strictly lower priority, the
    /// youngest such) was evicted to make room.
    Evicted {
        /// The evicted queue entry.
        victim: T,
    },
}

#[derive(Debug)]
struct Entry<T> {
    priority: u8,
    item: T,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<Entry<T>>,
    closed: bool,
    frozen: bool,
}

/// Bounded FIFO queue with priority eviction, close, and checkpoint
/// freeze. See the module docs for the ordering contract.
#[derive(Debug)]
pub struct ShedQueue<T> {
    state: Mutex<Inner<T>>,
    // Wakes consumers (`pop_wait`) on push / close / unfreeze.
    not_empty: Condvar,
    // Wakes producers and consumers parked behind a checkpoint freeze.
    thawed: Condvar,
    capacity: usize,
}

impl<T> ShedQueue<T> {
    /// An empty queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                frozen: false,
            }),
            not_empty: Condvar::new(),
            thawed: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Waits out an in-progress checkpoint freeze. Returns the guard with
    /// `frozen == false`.
    fn lock_thawed(&self) -> MutexGuard<'_, Inner<T>> {
        let mut inner = self.lock();
        while inner.frozen {
            inner = self
                .thawed
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        inner
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Enqueues if there is room; hands the item back otherwise. Never
    /// evicts. Blocks only behind a checkpoint freeze.
    pub fn push(&self, item: T, priority: u8) -> PushOutcome<T> {
        let mut inner = self.lock_thawed();
        if inner.items.len() >= self.capacity {
            return PushOutcome::RejectedFull(item);
        }
        inner.items.push_back(Entry { priority, item });
        drop(inner);
        self.not_empty.notify_one();
        PushOutcome::Enqueued
    }

    /// Enqueues, evicting the youngest strictly-lower-priority entry if
    /// the queue is full. With no such victim the item is handed back.
    pub fn push_evicting(&self, item: T, priority: u8) -> PushOutcome<T> {
        let mut inner = self.lock_thawed();
        if inner.items.len() < self.capacity {
            inner.items.push_back(Entry { priority, item });
            drop(inner);
            self.not_empty.notify_one();
            return PushOutcome::Enqueued;
        }
        // Youngest entry with the minimum priority, and only if strictly
        // below the incoming priority: scan from the back so ties among
        // victims resolve to the most recently queued.
        let mut victim_at: Option<(usize, u8)> = None;
        for (i, entry) in inner.items.iter().enumerate().rev() {
            match victim_at {
                Some((_, p)) if p <= entry.priority => {}
                _ => victim_at = Some((i, entry.priority)),
            }
        }
        match victim_at {
            Some((i, p)) if p < priority => {
                let victim = match inner.items.remove(i) {
                    Some(e) => e.item,
                    // Unreachable: `i` came from the scan above under the
                    // same lock.
                    None => return PushOutcome::RejectedFull(item),
                };
                inner.items.push_back(Entry { priority, item });
                drop(inner);
                self.not_empty.notify_one();
                PushOutcome::Evicted { victim }
            }
            _ => PushOutcome::RejectedFull(item),
        }
    }

    /// Enqueues unconditionally, growing past capacity. The degrade
    /// policy uses this for its keep-every-kth survivors: the thinned
    /// stream is allowed to overshoot the bound it just shed down to.
    pub fn push_unbounded(&self, item: T, priority: u8) {
        let mut inner = self.lock_thawed();
        inner.items.push_back(Entry { priority, item });
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Pops the FIFO head if one is present. Non-blocking aside from the
    /// checkpoint freeze.
    pub fn try_pop(&self) -> Option<T> {
        self.lock_thawed().items.pop_front().map(|e| e.item)
    }

    /// Pops the FIFO head if it satisfies `ready`. Used by the
    /// deterministic tick loop to serve only items whose simulated start
    /// time has arrived.
    pub fn pop_if(&self, ready: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut inner = self.lock_thawed();
        if inner.items.front().is_some_and(|e| ready(&e.item)) {
            inner.items.pop_front().map(|e| e.item)
        } else {
            None
        }
    }

    /// Blocks until an item is available (returns `Some`) or the queue is
    /// closed *and* drained (returns `None`). Also parks behind a
    /// checkpoint freeze. The wait loop re-checks every condition after
    /// every wakeup, so a notification can never be lost to a stale
    /// predicate.
    pub fn pop_wait(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if !inner.frozen {
                if let Some(entry) = inner.items.pop_front() {
                    return Some(entry.item);
                }
                if inner.closed {
                    return None;
                }
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: `pop_wait` returns `None` once drained. Pushes
    /// after close still enqueue (the service stops pushing on its own);
    /// close is a consumer-side shutdown signal, not a validity gate.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.thawed.notify_all();
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

impl<T: Clone> ShedQueue<T> {
    /// Begins a checkpoint: freezes the queue (pushes, sheds, and pops
    /// park until [`Self::unfreeze`]) and returns a consistent snapshot
    /// of the queued items in FIFO order. The freeze is taken and
    /// released under the same mutex as every queue operation, so the
    /// snapshot can never interleave with a half-applied shed.
    pub fn freeze_snapshot(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.frozen = true;
        inner.items.iter().map(|e| e.item.clone()).collect()
    }

    /// Ends a checkpoint freeze and wakes everything parked behind it.
    pub fn unfreeze(&self) {
        self.lock().frozen = false;
        self.thawed.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let q = ShedQueue::new(4);
        assert_eq!(q.push(1, 0), PushOutcome::Enqueued);
        assert_eq!(q.push(2, 9), PushOutcome::Enqueued);
        assert_eq!(q.push(3, 5), PushOutcome::Enqueued);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn plain_push_rejects_when_full() {
        let q = ShedQueue::new(2);
        assert_eq!(q.push(1, 0), PushOutcome::Enqueued);
        assert_eq!(q.push(2, 0), PushOutcome::Enqueued);
        assert_eq!(q.push(3, 9), PushOutcome::RejectedFull(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn eviction_takes_the_youngest_lowest_priority() {
        let q = ShedQueue::new(3);
        q.push(10, 1);
        q.push(11, 0);
        q.push(12, 0); // youngest of the two priority-0 entries
        match q.push_evicting(13, 2) {
            PushOutcome::Evicted { victim } => assert_eq!(victim, 12),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(q.try_pop(), Some(10));
        assert_eq!(q.try_pop(), Some(11));
        assert_eq!(q.try_pop(), Some(13));
    }

    #[test]
    fn eviction_requires_strictly_lower_priority() {
        let q = ShedQueue::new(1);
        q.push(1, 5);
        assert_eq!(q.push_evicting(2, 5), PushOutcome::RejectedFull(2));
        match q.push_evicting(3, 6) {
            PushOutcome::Evicted { victim } => assert_eq!(victim, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_push_overshoots_capacity() {
        let q = ShedQueue::new(1);
        q.push(1, 0);
        q.push_unbounded(2, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_if_gates_on_the_head() {
        let q = ShedQueue::new(2);
        q.push(7, 0);
        assert_eq!(q.pop_if(|&v| v > 10), None);
        assert_eq!(q.pop_if(|&v| v == 7), Some(7));
    }

    #[test]
    fn freeze_snapshot_is_consistent_and_thaws() {
        let q = ShedQueue::new(4);
        q.push(1, 0);
        q.push(2, 1);
        let snap = q.freeze_snapshot();
        assert_eq!(snap, vec![1, 2]);
        q.unfreeze();
        assert_eq!(q.try_pop(), Some(1));
    }

    #[test]
    fn close_drains_then_signals_none() {
        let q = ShedQueue::new(2);
        q.push(1, 0);
        q.close();
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn pop_wait_crosses_threads_without_lost_wakeups() {
        use std::sync::Arc;
        let q = Arc::new(ShedQueue::new(64));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop_wait() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..32 {
            q.push(i, 0);
        }
        q.close();
        let got = consumer.join().expect("consumer thread");
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }
}
