//! Per-clip query evaluation — the paper's Algorithm 2.
//!
//! For every object predicate `o_i`, the per-frame prediction indicator is
//! `𝟙_{o_i}(v) = 𝟙[max S_{o_i}(v) ≥ T_obj]` and the clip indicator fires
//! when the count of positive frames reaches the predicate's critical value
//! (Eq. 1). The action predicate is evaluated analogously over shots
//! (Eq. 2); the clip satisfies the query when every indicator fires (Eq. 3).
//!
//! **Predicate order and short-circuiting.** Algorithm 2 evaluates object
//! predicates in user order and returns early when one fails (lines 6–8);
//! the expensive action recognizer is only consulted on clips whose object
//! predicates all passed. One physical detail differs from the paper's
//! pseudocode: the pseudocode invokes `O(o_i|v)` per predicate, but a real
//! detector returns *all* labels in one forward pass per frame, so the
//! detector runs once per frame and its output is reused across object
//! predicates. Short-circuiting therefore saves action-recognizer
//! invocations (the paper's dominant cost) rather than detector passes, and
//! the saved work is visible in
//! [`InferenceStats::clips_short_circuited`].

use vaq_detect::{ActionRecognizer, InferenceStats, ObjectDetector};
use vaq_types::Query;
use vaq_video::ClipView;

/// The outcome of evaluating one clip, including the per-occurrence-unit
/// event indicators SVAQD's estimators consume.
#[derive(Debug, Clone)]
pub struct ClipEvaluation {
    /// Per object predicate (query order), per frame: `𝟙_{o_i}(v)`.
    pub object_events: Vec<Vec<bool>>,
    /// Per object predicate: count of positive frames in the clip.
    pub object_counts: Vec<u64>,
    /// Per object predicate: the clip indicator `𝟙_{o_i}(c)`.
    pub object_indicators: Vec<bool>,
    /// Per shot: `𝟙_a(s)`; `None` when the action recognizer was skipped by
    /// short-circuiting.
    pub action_events: Option<Vec<bool>>,
    /// Count of positive shots, when evaluated.
    pub action_count: Option<u64>,
    /// The action clip indicator `𝟙_a(c)`, when evaluated.
    pub action_indicator: Option<bool>,
    /// The query indicator `𝟙_q(c)` (Eq. 3).
    pub indicator: bool,
}

/// Evaluates Algorithm 2 on one clip.
///
/// `k_crit_obj` must hold one critical value per object predicate (query
/// order); `k_crit_act` is the action predicate's critical value.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_clip(
    query: &Query,
    clip: &ClipView,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    t_obj: f64,
    t_act: f64,
    k_crit_obj: &[u64],
    k_crit_act: u64,
    stats: &mut InferenceStats,
) -> ClipEvaluation {
    debug_assert_eq!(k_crit_obj.len(), query.objects.len());

    // One detector pass per frame, reused by all object predicates. The
    // per-frame max score per queried type is all the indicators need.
    let num_frames = clip.frames.len();
    let mut max_scores = vec![vec![0.0f64; num_frames]; query.objects.len()];
    for (fi, frame) in clip.frames.iter().enumerate() {
        let detections = detector.detect(frame);
        for det in &detections {
            if let Some(pi) = query.objects.iter().position(|&o| o == det.object) {
                if det.score > max_scores[pi][fi] {
                    max_scores[pi][fi] = det.score;
                }
            }
        }
    }
    stats.record_detector(num_frames as u64, detector.latency_ms());

    let mut object_events = Vec::with_capacity(query.objects.len());
    let mut object_counts = Vec::with_capacity(query.objects.len());
    let mut object_indicators = Vec::with_capacity(query.objects.len());
    let mut objects_pass = true;
    for (pi, scores) in max_scores.iter().enumerate() {
        let events: Vec<bool> = scores.iter().map(|&s| s >= t_obj).collect();
        let count = events.iter().filter(|&&e| e).count() as u64;
        let indicator = count >= k_crit_obj[pi];
        objects_pass &= indicator;
        object_events.push(events);
        object_counts.push(count);
        object_indicators.push(indicator);
    }

    // Short-circuit: a failed object predicate means the clip cannot
    // satisfy the query; skip the action recognizer entirely.
    if !objects_pass {
        stats.record_short_circuit();
        return ClipEvaluation {
            object_events,
            object_counts,
            object_indicators,
            action_events: None,
            action_count: None,
            action_indicator: None,
            indicator: false,
        };
    }

    let action_events: Vec<bool> = clip
        .shots
        .iter()
        .map(|shot| {
            recognizer
                .recognize(shot)
                .iter()
                .any(|p| p.action == query.action && p.score >= t_act)
        })
        .collect();
    stats.record_recognizer(clip.shots.len() as u64, recognizer.latency_ms());
    let action_count = action_events.iter().filter(|&&e| e).count() as u64;
    let action_indicator = action_count >= k_crit_act;

    ClipEvaluation {
        object_events,
        object_counts,
        object_indicators,
        action_events: Some(action_events),
        action_count: Some(action_count),
        action_indicator: Some(action_indicator),
        indicator: action_indicator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_detect::profiles;
    use vaq_detect::{SimulatedActionRecognizer, SimulatedObjectDetector};
    use vaq_types::{ActionType, ClipId, ObjectType, Query, VideoGeometry};
    use vaq_video::{SceneScriptBuilder, VideoStream};

    fn o(i: u32) -> ObjectType {
        ObjectType::new(i)
    }
    fn a(i: u32) -> ActionType {
        ActionType::new(i)
    }

    fn setup() -> (vaq_video::SceneScript,) {
        let mut b = SceneScriptBuilder::new(500, VideoGeometry::PAPER_DEFAULT);
        b.object_span(o(1), 0, 250).unwrap(); // clips 0..4 for o1
        b.action_span(a(0), 0, 500).unwrap(); // action everywhere
        (b.build(),)
    }

    #[test]
    fn ideal_models_give_exact_indicators() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::new(a(0), vec![o(1)]);
        let mut stats = InferenceStats::default();

        let c0 = stream.materialize(ClipId::new(0));
        let ev = evaluate_clip(&q, &c0, &det, &rec, 0.5, 0.5, &[3], 2, &mut stats);
        assert!(ev.indicator);
        assert_eq!(ev.object_counts, vec![50]);
        assert_eq!(ev.action_count, Some(5));

        // Clip 5 (frames 250..300): object gone.
        let c5 = stream.materialize(ClipId::new(5));
        let ev = evaluate_clip(&q, &c5, &det, &rec, 0.5, 0.5, &[3], 2, &mut stats);
        assert!(!ev.indicator);
        assert_eq!(ev.object_counts, vec![0]);
        assert_eq!(ev.action_events, None, "short-circuited");
    }

    #[test]
    fn short_circuit_skips_recognizer_and_is_accounted() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::new(a(0), vec![o(1)]);
        let mut stats = InferenceStats::default();
        let c5 = stream.materialize(ClipId::new(5));
        evaluate_clip(&q, &c5, &det, &rec, 0.5, 0.5, &[3], 2, &mut stats);
        assert_eq!(stats.recognizer_shots, 0);
        assert_eq!(stats.clips_short_circuited, 1);
        assert_eq!(stats.detector_frames, 50);
    }

    #[test]
    fn detector_runs_once_for_multiple_object_predicates() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        // Two object predicates: the second (o2) is absent, so the clip
        // fails — but detector frames stay at 50 (one pass per frame).
        let q = Query::new(a(0), vec![o(1), o(2)]);
        let mut stats = InferenceStats::default();
        let c0 = stream.materialize(ClipId::new(0));
        let ev = evaluate_clip(&q, &c0, &det, &rec, 0.5, 0.5, &[3, 3], 2, &mut stats);
        assert!(!ev.indicator);
        assert_eq!(ev.object_indicators, vec![true, false]);
        assert_eq!(stats.detector_frames, 50);
    }

    #[test]
    fn threshold_filters_scores() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::new(a(0), vec![o(1)]);
        let mut stats = InferenceStats::default();
        let c0 = stream.materialize(ClipId::new(0));
        // Ideal scores are exactly 1.0; a threshold above 1.0 kills them.
        // (t_obj is validated to [0,1] in configs; here we exercise the raw
        // comparison path.)
        let ev = evaluate_clip(&q, &c0, &det, &rec, 1.0, 0.5, &[3], 2, &mut stats);
        assert_eq!(ev.object_counts, vec![50], "score 1.0 passes t=1.0");
        assert!(ev.indicator);
    }

    #[test]
    fn critical_value_gates_indicator() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::new(a(0), vec![o(1)]);
        let mut stats = InferenceStats::default();
        // Clip 4 = frames 200..250, object present throughout (span 0..250).
        let c4 = stream.materialize(ClipId::new(4));
        let ev = evaluate_clip(&q, &c4, &det, &rec, 0.5, 0.5, &[50], 2, &mut stats);
        assert!(ev.indicator, "50 positives meet k=50");
        let ev = evaluate_clip(&q, &c4, &det, &rec, 0.5, 0.5, &[51], 2, &mut stats);
        assert!(!ev.indicator, "k=51 cannot be met in a 50-frame clip");
    }

    #[test]
    fn action_only_query_runs_recognizer_directly() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::action_only(a(0));
        let mut stats = InferenceStats::default();
        let c0 = stream.materialize(ClipId::new(0));
        let ev = evaluate_clip(&q, &c0, &det, &rec, 0.5, 0.5, &[], 2, &mut stats);
        assert!(ev.indicator);
        assert!(ev.object_events.is_empty());
        assert_eq!(stats.recognizer_shots, 5);
    }
}
