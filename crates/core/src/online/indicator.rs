//! Per-clip query evaluation — the paper's Algorithm 2.
//!
//! For every object predicate `o_i`, the per-frame prediction indicator is
//! `𝟙_{o_i}(v) = 𝟙[max S_{o_i}(v) ≥ T_obj]` and the clip indicator fires
//! when the count of positive frames reaches the predicate's critical value
//! (Eq. 1). The action predicate is evaluated analogously over shots
//! (Eq. 2); the clip satisfies the query when every indicator fires (Eq. 3).
//!
//! **Predicate order and short-circuiting.** Algorithm 2 evaluates object
//! predicates in user order and returns early when one fails (lines 6–8);
//! the expensive action recognizer is only consulted on clips whose object
//! predicates all passed. One physical detail differs from the paper's
//! pseudocode: the pseudocode invokes `O(o_i|v)` per predicate, but a real
//! detector returns *all* labels in one forward pass per frame, so the
//! detector runs once per frame and its output is reused across object
//! predicates. Short-circuiting therefore saves action-recognizer
//! invocations (the paper's dominant cost) rather than detector passes, and
//! the saved work is visible in
//! [`InferenceStats::clips_short_circuited`].

use crate::config::{DegradationPolicy, RetryPolicy};
use serde::{Deserialize, Serialize};
use vaq_detect::fault::DetectorFault;
use vaq_detect::{ActionRecognizer, CallProvenance, InferenceStats, ObjectDetector};
use vaq_types::{conv, Query, Result, VaqError};
use vaq_video::ClipView;

/// Reusable evaluation buffers, hoisting the per-clip allocations
/// (`observed_scores`, per-frame `maxes`) out of [`try_evaluate_clip`]'s
/// hot loop. An engine owns one scratch and threads it through every clip;
/// one-shot callers can pass a fresh [`EvalScratch::new`].
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Per object predicate: the per-frame max score column.
    scores: Vec<Vec<f64>>,
    /// Per object predicate: the current frame's max score.
    maxes: Vec<f64>,
}

impl EvalScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Readies the buffers for `predicates` object predicates over a clip
    /// of `frames` frames, keeping previously grown capacity.
    fn reset(&mut self, predicates: usize, frames: usize) {
        self.scores.truncate(predicates);
        while self.scores.len() < predicates {
            self.scores.push(Vec::new());
        }
        for column in &mut self.scores {
            column.clear();
            column.reserve(frames);
        }
        self.maxes.clear();
        self.maxes.resize(predicates, 0.0);
    }
}

/// Why a clip carries no query answer — the typed gap markers degraded
/// runs report instead of silently mis-answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapReason {
    /// No frame of the clip produced a detector output (full detector
    /// outage under [`DegradationPolicy::ImputeBackground`]).
    DetectorOutage,
    /// Object predicates passed but no shot produced a recognizer output.
    RecognizerOutage,
    /// The clip was skipped on the first unrecovered fault under
    /// [`DegradationPolicy::SkipClip`].
    SkippedOnFault,
    /// The service's overload policy dropped the clip before evaluation
    /// (queue overflow, priority eviction, or a stalled tenant).
    Shed,
    /// The clip waited in the service queue past its query's deadline and
    /// was dropped without evaluation.
    DeadlineExceeded,
}

impl std::fmt::Display for GapReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GapReason::DetectorOutage => write!(f, "detector outage"),
            GapReason::RecognizerOutage => write!(f, "recognizer outage"),
            GapReason::SkippedOnFault => write!(f, "skipped on fault"),
            GapReason::Shed => write!(f, "shed under overload"),
            GapReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// The outcome of evaluating one clip, including the per-occurrence-unit
/// event indicators SVAQD's estimators consume.
///
/// Under [`DegradationPolicy::ImputeBackground`] the event vectors hold
/// only the *observed* occurrence units — missing frames/shots are imputed
/// as background and must not feed the background estimators as if they
/// had been measured.
#[derive(Debug, Clone)]
pub struct ClipEvaluation {
    /// Per object predicate (query order), per observed frame: `𝟙_{o_i}(v)`.
    pub object_events: Vec<Vec<bool>>,
    /// Per object predicate: count of positive observed frames in the clip.
    pub object_counts: Vec<u64>,
    /// Per object predicate: the clip indicator `𝟙_{o_i}(c)`.
    pub object_indicators: Vec<bool>,
    /// Per observed shot: `𝟙_a(s)`; `None` when the action recognizer was
    /// skipped by short-circuiting (or the clip degraded to a gap).
    pub action_events: Option<Vec<bool>>,
    /// Count of positive observed shots, when evaluated.
    pub action_count: Option<u64>,
    /// The action clip indicator `𝟙_a(c)`, when evaluated.
    pub action_indicator: Option<bool>,
    /// The query indicator `𝟙_q(c)` (Eq. 3).
    pub indicator: bool,
    /// Frames in the clip.
    pub frames_total: u64,
    /// Frames whose detector output was available (== `frames_total` on a
    /// fault-free run).
    pub frames_observed: u64,
    /// Shots in the clip.
    pub shots_total: u64,
    /// Shots whose recognizer output was available, when the recognizer
    /// ran at all.
    pub shots_observed: Option<u64>,
}

impl ClipEvaluation {
    /// An all-negative evaluation for a clip degraded to a gap.
    fn gap(query: &Query, frames_total: u64, shots_total: u64) -> Self {
        Self {
            object_events: vec![Vec::new(); query.objects.len()],
            object_counts: vec![0; query.objects.len()],
            object_indicators: vec![false; query.objects.len()],
            action_events: None,
            action_count: None,
            action_indicator: None,
            indicator: false,
            frames_total,
            frames_observed: 0,
            shots_total,
            shots_observed: None,
        }
    }
}

/// Edge-corrected critical value for a scan window truncated to `observed`
/// of `total` occurrence units: the event-count bar shrinks proportionally
/// (never below 1). With the full window observed this is exactly `k`.
fn edge_corrected_k(k: u64, observed: u64, total: u64) -> u64 {
    debug_assert!(observed > 0 && observed <= total);
    if observed == total {
        return k;
    }
    ((k * observed).div_ceil(total)).max(1)
}

enum ModelKind {
    Detector,
    Recognizer,
}

/// Bounded retry with exponential backoff around one model invocation.
/// Every fault and every backoff wait is deposited into `stats`.
fn call_with_retry<T>(
    retry: &RetryPolicy,
    kind: ModelKind,
    stats: &mut InferenceStats,
    mut call: impl FnMut() -> std::result::Result<T, DetectorFault>,
) -> std::result::Result<T, DetectorFault> {
    let mut attempt = 0u32;
    loop {
        match call() {
            Ok(v) => return Ok(v),
            Err(fault) => {
                match kind {
                    ModelKind::Detector => stats.record_detector_fault(),
                    ModelKind::Recognizer => stats.record_recognizer_fault(),
                }
                if !fault.is_retryable() || attempt >= retry.max_retries {
                    return Err(fault);
                }
                stats.record_retry(retry.backoff_ms(attempt));
                attempt += 1;
            }
        }
    }
}

/// Evaluates Algorithm 2 on one clip through the fallible model paths,
/// degrading per `degradation` when outputs stay unavailable after
/// `retry`.
///
/// Returns the evaluation plus an optional [`GapReason`] when the clip
/// carries no usable answer; under [`DegradationPolicy::Abort`] an
/// unrecovered fault is a [`VaqError::DetectorUnavailable`] error instead.
#[allow(clippy::too_many_arguments)]
pub fn try_evaluate_clip(
    query: &Query,
    clip: &ClipView,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    t_obj: f64,
    t_act: f64,
    k_crit_obj: &[u64],
    k_crit_act: u64,
    retry: &RetryPolicy,
    degradation: DegradationPolicy,
    scratch: &mut EvalScratch,
    stats: &mut InferenceStats,
) -> Result<(ClipEvaluation, Option<GapReason>)> {
    debug_assert_eq!(k_crit_obj.len(), query.objects.len());
    let frames_total = conv::len_u64(clip.frames.len());
    let shots_total = conv::len_u64(clip.shots.len());

    // One detector pass per frame, reused by all object predicates. The
    // per-frame max score per queried type is all the indicators need; both
    // buffers live in the caller-owned scratch so the hot loop is
    // allocation-free across clips.
    scratch.reset(query.objects.len(), clip.frames.len());
    let EvalScratch {
        scores: observed_scores,
        maxes,
    } = scratch;
    let mut missing_frames = 0u64;
    for frame in &clip.frames {
        match call_with_retry(retry, ModelKind::Detector, stats, || {
            detector.try_detect_traced(frame)
        }) {
            Ok((detections, provenance)) => {
                match provenance {
                    CallProvenance::Executed => stats.record_detector(1, detector.latency_ms()),
                    CallProvenance::Cached => stats.record_detector_cached(1),
                }
                for m in maxes.iter_mut() {
                    *m = 0.0;
                }
                for det in &detections {
                    if let Some(pi) = query.objects.iter().position(|&o| o == det.object) {
                        if det.score > maxes[pi] {
                            maxes[pi] = det.score;
                        }
                    }
                }
                for (pi, &m) in maxes.iter().enumerate() {
                    observed_scores[pi].push(m);
                }
            }
            Err(fault) => match degradation {
                DegradationPolicy::Abort => {
                    return Err(VaqError::DetectorUnavailable(format!(
                        "object detector {:?} failed on frame {} of clip {}: {fault}",
                        detector.name(),
                        frame.id,
                        clip.id
                    )));
                }
                DegradationPolicy::SkipClip => {
                    return Ok((
                        ClipEvaluation::gap(query, frames_total, shots_total),
                        Some(GapReason::SkippedOnFault),
                    ));
                }
                DegradationPolicy::ImputeBackground => missing_frames += 1,
            },
        }
    }
    let frames_observed = frames_total - missing_frames;
    if missing_frames > 0 {
        stats.record_imputed_frames(missing_frames);
    }
    // A clip with object predicates but zero observed frames carries no
    // object information at all: degrade to a typed gap rather than
    // imputing an answer out of nothing.
    if frames_observed == 0 && !query.objects.is_empty() && frames_total > 0 {
        return Ok((
            ClipEvaluation::gap(query, frames_total, shots_total),
            Some(GapReason::DetectorOutage),
        ));
    }

    let mut object_events = Vec::with_capacity(query.objects.len());
    let mut object_counts = Vec::with_capacity(query.objects.len());
    let mut object_indicators = Vec::with_capacity(query.objects.len());
    let mut objects_pass = true;
    for (pi, scores) in observed_scores.iter().enumerate() {
        let events: Vec<bool> = scores.iter().map(|&s| s >= t_obj).collect();
        let count = conv::count_true(&events);
        let k_eff = edge_corrected_k(k_crit_obj[pi], frames_observed.max(1), frames_total.max(1));
        let indicator = count >= k_eff;
        objects_pass &= indicator;
        object_events.push(events);
        object_counts.push(count);
        object_indicators.push(indicator);
    }

    // Short-circuit: a failed object predicate means the clip cannot
    // satisfy the query; skip the action recognizer entirely.
    if !objects_pass {
        stats.record_short_circuit();
        return Ok((
            ClipEvaluation {
                object_events,
                object_counts,
                object_indicators,
                action_events: None,
                action_count: None,
                action_indicator: None,
                indicator: false,
                frames_total,
                frames_observed,
                shots_total,
                shots_observed: None,
            },
            None,
        ));
    }

    let mut action_events: Vec<bool> = Vec::with_capacity(clip.shots.len());
    let mut missing_shots = 0u64;
    for shot in &clip.shots {
        match call_with_retry(retry, ModelKind::Recognizer, stats, || {
            recognizer.try_recognize_traced(shot)
        }) {
            Ok((preds, provenance)) => {
                match provenance {
                    CallProvenance::Executed => stats.record_recognizer(1, recognizer.latency_ms()),
                    CallProvenance::Cached => stats.record_recognizer_cached(1),
                }
                action_events.push(
                    preds
                        .iter()
                        .any(|p| p.action == query.action && p.score >= t_act),
                );
            }
            Err(fault) => match degradation {
                DegradationPolicy::Abort => {
                    return Err(VaqError::DetectorUnavailable(format!(
                        "action recognizer {:?} failed on shot {} of clip {}: {fault}",
                        recognizer.name(),
                        shot.id,
                        clip.id
                    )));
                }
                DegradationPolicy::SkipClip => {
                    return Ok((
                        ClipEvaluation {
                            object_events,
                            object_counts,
                            object_indicators,
                            action_events: None,
                            action_count: None,
                            action_indicator: None,
                            indicator: false,
                            frames_total,
                            frames_observed,
                            shots_total,
                            shots_observed: None,
                        },
                        Some(GapReason::SkippedOnFault),
                    ));
                }
                DegradationPolicy::ImputeBackground => missing_shots += 1,
            },
        }
    }
    let shots_observed = shots_total - missing_shots;
    if missing_shots > 0 {
        stats.record_imputed_shots(missing_shots);
    }
    if shots_observed == 0 && shots_total > 0 {
        // Objects passed but the action predicate is unknowable.
        return Ok((
            ClipEvaluation {
                object_events,
                object_counts,
                object_indicators,
                action_events: None,
                action_count: None,
                action_indicator: None,
                indicator: false,
                frames_total,
                frames_observed,
                shots_total,
                shots_observed: Some(0),
            },
            Some(GapReason::RecognizerOutage),
        ));
    }
    let action_count = conv::count_true(&action_events);
    let k_act_eff = edge_corrected_k(k_crit_act, shots_observed.max(1), shots_total.max(1));
    let action_indicator = action_count >= k_act_eff;

    Ok((
        ClipEvaluation {
            object_events,
            object_counts,
            object_indicators,
            action_events: Some(action_events),
            action_count: Some(action_count),
            action_indicator: Some(action_indicator),
            indicator: action_indicator,
            frames_total,
            frames_observed,
            shots_total,
            shots_observed: Some(shots_observed),
        },
        None,
    ))
}

/// Evaluates Algorithm 2 on one clip through the infallible model paths —
/// the zero-fault fast path, equivalent to [`try_evaluate_clip`] with
/// models that never fail.
///
/// `k_crit_obj` must hold one critical value per object predicate (query
/// order); `k_crit_act` is the action predicate's critical value.
#[allow(clippy::too_many_arguments, clippy::expect_used)]
pub fn evaluate_clip(
    query: &Query,
    clip: &ClipView,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    t_obj: f64,
    t_act: f64,
    k_crit_obj: &[u64],
    k_crit_act: u64,
    stats: &mut InferenceStats,
) -> ClipEvaluation {
    let mut scratch = EvalScratch::new();
    let (evaluation, gap) = try_evaluate_clip(
        query,
        clip,
        detector,
        recognizer,
        t_obj,
        t_act,
        k_crit_obj,
        k_crit_act,
        &RetryPolicy::NONE,
        DegradationPolicy::ImputeBackground,
        &mut scratch,
        stats,
    )
    // vaq-lint: allow(no-panic) -- statically infallible: ImputeBackground with RetryPolicy::NONE has no Err path
    .expect("ImputeBackground never aborts");
    debug_assert!(gap.is_none(), "infallible models cannot produce gaps");
    evaluation
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_detect::profiles;
    use vaq_detect::{SimulatedActionRecognizer, SimulatedObjectDetector};
    use vaq_types::{ActionType, ClipId, ObjectType, Query, VideoGeometry};
    use vaq_video::{SceneScriptBuilder, VideoStream};

    fn o(i: u32) -> ObjectType {
        ObjectType::new(i)
    }
    fn a(i: u32) -> ActionType {
        ActionType::new(i)
    }

    fn setup() -> (vaq_video::SceneScript,) {
        let mut b = SceneScriptBuilder::new(500, VideoGeometry::PAPER_DEFAULT);
        b.object_span(o(1), 0, 250).unwrap(); // clips 0..4 for o1
        b.action_span(a(0), 0, 500).unwrap(); // action everywhere
        (b.build(),)
    }

    #[test]
    fn ideal_models_give_exact_indicators() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::new(a(0), vec![o(1)]);
        let mut stats = InferenceStats::default();

        let c0 = stream.materialize(ClipId::new(0));
        let ev = evaluate_clip(&q, &c0, &det, &rec, 0.5, 0.5, &[3], 2, &mut stats);
        assert!(ev.indicator);
        assert_eq!(ev.object_counts, vec![50]);
        assert_eq!(ev.action_count, Some(5));

        // Clip 5 (frames 250..300): object gone.
        let c5 = stream.materialize(ClipId::new(5));
        let ev = evaluate_clip(&q, &c5, &det, &rec, 0.5, 0.5, &[3], 2, &mut stats);
        assert!(!ev.indicator);
        assert_eq!(ev.object_counts, vec![0]);
        assert_eq!(ev.action_events, None, "short-circuited");
    }

    #[test]
    fn short_circuit_skips_recognizer_and_is_accounted() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::new(a(0), vec![o(1)]);
        let mut stats = InferenceStats::default();
        let c5 = stream.materialize(ClipId::new(5));
        evaluate_clip(&q, &c5, &det, &rec, 0.5, 0.5, &[3], 2, &mut stats);
        assert_eq!(stats.recognizer_shots, 0);
        assert_eq!(stats.clips_short_circuited, 1);
        assert_eq!(stats.detector_frames, 50);
    }

    #[test]
    fn detector_runs_once_for_multiple_object_predicates() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        // Two object predicates: the second (o2) is absent, so the clip
        // fails — but detector frames stay at 50 (one pass per frame).
        let q = Query::new(a(0), vec![o(1), o(2)]);
        let mut stats = InferenceStats::default();
        let c0 = stream.materialize(ClipId::new(0));
        let ev = evaluate_clip(&q, &c0, &det, &rec, 0.5, 0.5, &[3, 3], 2, &mut stats);
        assert!(!ev.indicator);
        assert_eq!(ev.object_indicators, vec![true, false]);
        assert_eq!(stats.detector_frames, 50);
    }

    #[test]
    fn threshold_filters_scores() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::new(a(0), vec![o(1)]);
        let mut stats = InferenceStats::default();
        let c0 = stream.materialize(ClipId::new(0));
        // Ideal scores are exactly 1.0; a threshold above 1.0 kills them.
        // (t_obj is validated to [0,1] in configs; here we exercise the raw
        // comparison path.)
        let ev = evaluate_clip(&q, &c0, &det, &rec, 1.0, 0.5, &[3], 2, &mut stats);
        assert_eq!(ev.object_counts, vec![50], "score 1.0 passes t=1.0");
        assert!(ev.indicator);
    }

    #[test]
    fn critical_value_gates_indicator() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::new(a(0), vec![o(1)]);
        let mut stats = InferenceStats::default();
        // Clip 4 = frames 200..250, object present throughout (span 0..250).
        let c4 = stream.materialize(ClipId::new(4));
        let ev = evaluate_clip(&q, &c4, &det, &rec, 0.5, 0.5, &[50], 2, &mut stats);
        assert!(ev.indicator, "50 positives meet k=50");
        let ev = evaluate_clip(&q, &c4, &det, &rec, 0.5, 0.5, &[51], 2, &mut stats);
        assert!(!ev.indicator, "k=51 cannot be met in a 50-frame clip");
    }

    #[test]
    fn action_only_query_runs_recognizer_directly() {
        let (script,) = setup();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 86, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 36, 1);
        let stream = VideoStream::new(&script);
        let q = Query::action_only(a(0));
        let mut stats = InferenceStats::default();
        let c0 = stream.materialize(ClipId::new(0));
        let ev = evaluate_clip(&q, &c0, &det, &rec, 0.5, 0.5, &[], 2, &mut stats);
        assert!(ev.indicator);
        assert!(ev.object_events.is_empty());
        assert_eq!(stats.recognizer_shots, 5);
    }
}
