//! Multi-query online evaluation over one clip stream.
//!
//! N simultaneous online queries over the same stream would naively invoke
//! the object detector N times per frame — but the detector's output is a
//! pure function of the frame, not of the query (the paper treats the
//! models as black boxes whose one forward pass yields *all* labels). The
//! driver here interposes a shared [`InferenceCache`] between every engine
//! and the models, so a batch of N queries performs ~1 detector invocation
//! per frame: the first engine to reach a frame executes the model and the
//! other N−1 hit the cache. The same holds for the action recognizer on
//! shots that multiple engines evaluate.
//!
//! Two execution modes, chosen by [`MultiQueryOptions::threads`]:
//!
//! * **Interleaved (threads ≤ 1).** All engines advance clip by clip in
//!   lockstep on the calling thread. Cache capacity of a single clip
//!   suffices, and each frame is executed *exactly* once.
//! * **Sharded (threads > 1).** Queries are chunked across worker threads;
//!   each worker streams all clips through its chunk's engines. Workers
//!   race on the cache, so a frame may occasionally be executed more than
//!   once (two workers miss concurrently before either stores) — the
//!   `≤ (1+ε)` invocations-per-frame contract rather than `= 1`.
//!
//! Engines also share one [`SharedScanCaches`] pair, so critical values
//! for a given background probability are computed once per batch.

use crate::config::OnlineConfig;
use crate::online::engine::{OnlineEngine, OnlineResult, SharedScanCaches};
use trace::Tracer;
use vaq_detect::{ActionRecognizer, CacheStats, InferenceCache, InferenceStats, ObjectDetector};
use vaq_types::{Query, Result};
use vaq_video::{SceneScript, VideoStream};

/// Knobs for [`run_multi_query`].
#[derive(Debug, Clone, Copy)]
pub struct MultiQueryOptions {
    /// Worker threads. `<= 1` runs all engines interleaved on the calling
    /// thread (exactly one model execution per input); `> 1` shards the
    /// query batch across threads (at-least-once semantics on the shared
    /// cache, bounded by its capacity).
    pub threads: usize,
    /// Cache capacity in clips. The interleaved mode needs only 1; sharded
    /// mode wants enough clips to cover worker skew (the default absorbs
    /// several clips of drift between the fastest and slowest worker).
    pub cache_clips: usize,
}

impl Default for MultiQueryOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            cache_clips: 8,
        }
    }
}

/// What a multi-query run returns: one [`OnlineResult`] per input query
/// (same order), plus batch-level cache and cost accounting.
#[derive(Debug)]
pub struct MultiQueryOutput {
    /// Per-query results, in input order.
    pub results: Vec<OnlineResult>,
    /// Shared inference-cache counters for the whole batch.
    pub cache: CacheStats,
    /// All engines' cost accounting merged. `detector_frames` counts
    /// *executed* frames across the batch; `detector_cached` counts the
    /// invocations the cache absorbed.
    pub stats: InferenceStats,
}

/// Evaluates a batch of online queries over one stream against a shared
/// inference cache and shared critical-value caches.
pub fn run_multi_query(
    queries: &[Query],
    config: &OnlineConfig,
    script: &SceneScript,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    options: MultiQueryOptions,
) -> Result<MultiQueryOutput> {
    run_multi_query_traced(
        queries,
        config,
        script,
        detector,
        recognizer,
        options,
        &Tracer::disabled(),
    )
}

/// [`run_multi_query`] with telemetry: every engine emits `online.clip`
/// spans and `online.*` / `detect.*` counters, and the shared
/// critical-value caches count their hits and misses, all through
/// `tracer`. Results are bit-identical to the untraced run.
pub fn run_multi_query_traced(
    queries: &[Query],
    config: &OnlineConfig,
    script: &SceneScript,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    options: MultiQueryOptions,
    tracer: &Tracer,
) -> Result<MultiQueryOutput> {
    let geometry = script.geometry();
    let cache = InferenceCache::with_clip_capacity(geometry, options.cache_clips.max(1));
    let cached_detector = cache.detector(detector);
    let cached_recognizer = cache.recognizer(recognizer);
    let scan_caches = SharedScanCaches::new_traced(config, geometry, tracer)?;

    let results = if options.threads <= 1 || queries.len() <= 1 {
        // Interleaved: every engine sees clip c before any engine sees
        // c+1, so a one-clip cache already guarantees exactly one model
        // execution per frame/shot that any engine needs.
        let mut engines = queries
            .iter()
            .map(|q| {
                OnlineEngine::with_shared_caches(
                    q.clone(),
                    *config,
                    geometry,
                    &cached_detector,
                    &cached_recognizer,
                    &scan_caches,
                )
                .map(|e| e.with_tracer(tracer.clone()))
            })
            .collect::<Result<Vec<_>>>()?;
        for clip in VideoStream::new(script) {
            for engine in &mut engines {
                engine.try_push_clip(&clip)?;
            }
        }
        engines.into_iter().map(OnlineEngine::into_result).collect()
    } else {
        // Sharded: contiguous query chunks, one worker thread per chunk,
        // each streaming the whole video through its engines.
        let chunk = queries.len().div_ceil(options.threads);
        std::thread::scope(|scope| -> Result<Vec<OnlineResult>> {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|batch| {
                    let scan_caches = scan_caches.clone();
                    scope.spawn(move || -> Result<Vec<OnlineResult>> {
                        let mut engines = batch
                            .iter()
                            .map(|q| {
                                OnlineEngine::with_shared_caches(
                                    q.clone(),
                                    *config,
                                    geometry,
                                    &cached_detector,
                                    &cached_recognizer,
                                    &scan_caches,
                                )
                                .map(|e| e.with_tracer(tracer.clone()))
                            })
                            .collect::<Result<Vec<_>>>()?;
                        for clip in VideoStream::new(script) {
                            for engine in &mut engines {
                                engine.try_push_clip(&clip)?;
                            }
                        }
                        Ok(engines.into_iter().map(OnlineEngine::into_result).collect())
                    })
                })
                .collect();
            // Workers cover contiguous query chunks in spawn order, so
            // joining in order yields results in query order.
            let mut results = Vec::with_capacity(queries.len());
            for handle in handles {
                results.extend(
                    handle
                        .join()
                        .unwrap_or_else(|e| std::panic::resume_unwind(e))?,
                );
            }
            Ok(results)
        })?
    };

    let mut stats = InferenceStats::default();
    for result in &results {
        stats.merge(&result.stats);
    }
    Ok(MultiQueryOutput {
        results,
        cache: cache.stats(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_detect::profiles;
    use vaq_detect::{IouTracker, SimulatedActionRecognizer, SimulatedObjectDetector};
    use vaq_types::{ActionType, ObjectType, VideoGeometry};
    use vaq_video::SceneScriptBuilder;

    fn o(i: u32) -> ObjectType {
        ObjectType::new(i)
    }
    fn a(i: u32) -> ActionType {
        ActionType::new(i)
    }

    const G: VideoGeometry = VideoGeometry::PAPER_DEFAULT;

    fn script() -> SceneScript {
        let mut b = SceneScriptBuilder::new(1500, G);
        b.object_span(o(1), 200, 700).unwrap();
        b.object_span(o(2), 0, 1200).unwrap();
        b.action_span(a(0), 300, 900).unwrap();
        b.action_span(a(1), 0, 1500).unwrap();
        b.build()
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::new(a(0), vec![o(1)]),
            Query::new(a(0), vec![o(2)]),
            Query::new(a(0), vec![o(1), o(2)]),
            Query::new(a(1), vec![o(1)]),
            Query::new(a(1), vec![o(2)]),
            Query::new(a(1), vec![o(1), o(2)]),
            Query::action_only(a(0)),
            Query::action_only(a(1)),
        ]
    }

    #[test]
    fn eight_queries_share_one_detector_pass_per_frame() {
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 4, 1);
        let qs = queries();
        let out = run_multi_query(
            &qs,
            &OnlineConfig::svaqd(),
            &s,
            &det,
            &rec,
            MultiQueryOptions::default(),
        )
        .unwrap();

        // The acceptance bar: 8 queries, exactly 1 executed detector pass
        // per frame — everything else served from the cache. (Every engine
        // runs the detector pass; its one forward pass is reused across all
        // of a query's object predicates.)
        let num_frames = s.num_frames();
        assert_eq!(out.stats.detector_frames, num_frames);
        assert_eq!(out.stats.detector_cached, 7 * num_frames);
        assert_eq!(
            out.cache.detector_misses, num_frames,
            "one miss per frame, then hits"
        );
        assert_eq!(out.cache.detector_hits, 7 * num_frames);
        // Recognizer executions are bounded by the shot count: whichever
        // engine needs a shot first executes, the rest hit the cache.
        let num_shots = s.num_clips() * u64::from(G.shots_per_clip);
        assert!(
            out.stats.recognizer_shots <= num_shots,
            "{} executed shots exceed the {} in the stream",
            out.stats.recognizer_shots,
            num_shots
        );
        assert!(out.cache.recognizer_hits > 0, "nothing shared shot work");
    }

    #[test]
    fn multi_query_results_match_standalone_engines() {
        // Per-query outputs must be unchanged by batching: same sequences,
        // same records, whether cached+interleaved or run alone.
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 8, 42);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 4, 42);
        let cfg = OnlineConfig::svaqd();
        let qs = queries();

        let reference: Vec<OnlineResult> = qs
            .iter()
            .map(|q| {
                OnlineEngine::new(q.clone(), cfg, &G, &det, &rec)
                    .unwrap()
                    .run(VideoStream::new(&s))
            })
            .collect();

        for threads in [1usize, 2, 4] {
            let out = run_multi_query(
                &qs,
                &cfg,
                &s,
                &det,
                &rec,
                MultiQueryOptions {
                    threads,
                    cache_clips: 8,
                },
            )
            .unwrap();
            assert_eq!(out.results.len(), qs.len());
            for (i, (r, m)) in reference.iter().zip(&out.results).enumerate() {
                assert_eq!(r.sequences, m.sequences, "threads={threads} query={i}");
                assert_eq!(r.records, m.records, "threads={threads} query={i}");
            }
        }
    }

    #[test]
    fn sharded_mode_shares_the_cache_across_threads() {
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 4, 1);
        let qs = queries();
        let out = run_multi_query(
            &qs,
            &OnlineConfig::svaqd(),
            &s,
            &det,
            &rec,
            MultiQueryOptions {
                threads: 2,
                cache_clips: 8,
            },
        )
        .unwrap();
        let num_frames = s.num_frames();
        // 8 engines × one detector pass per frame = total invocations.
        assert_eq!(
            out.stats.detector_frames + out.stats.detector_cached,
            8 * num_frames
        );
        // Races allow duplicate executions but the cache must absorb the
        // bulk: well under two executions per frame for an 8-clip cache
        // with only 2 workers.
        assert!(
            out.stats.detector_frames < 2 * num_frames,
            "{} executed frames for {} stream frames — cache not shared",
            out.stats.detector_frames,
            num_frames
        );
        assert!(out.cache.detector_hits > 0);
    }

    #[test]
    fn traced_batch_matches_untraced_and_counts_every_clip() {
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 4, 1);
        let cfg = OnlineConfig::svaqd();
        let qs = queries();
        let plain =
            run_multi_query(&qs, &cfg, &s, &det, &rec, MultiQueryOptions::default()).unwrap();
        let sink = trace::MemorySink::unbounded();
        let tracer = Tracer::new(trace::MockClock::new(), sink.clone());
        let traced = run_multi_query_traced(
            &qs,
            &cfg,
            &s,
            &det,
            &rec,
            MultiQueryOptions::default(),
            &tracer,
        )
        .unwrap();
        for (p, t) in plain.results.iter().zip(&traced.results) {
            assert_eq!(p.sequences, t.sequences, "telemetry changed a result");
            assert_eq!(p.records, t.records);
        }
        let clips = s.num_clips() * qs.len() as u64;
        assert_eq!(tracer.snapshot().counters.get("online.clips"), Some(&clips));
        assert_eq!(
            sink.spans()
                .iter()
                .filter(|r| r.name == "online.clip")
                .count() as u64,
            clips
        );
    }

    #[test]
    fn ingestion_and_multi_query_compose_on_one_models() {
        // Smoke: the same model instances serve a (mutably-tracked) ingest
        // and a multi-query batch — the Send + Sync bound holds end to end.
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 4, 1);
        let mut tracker = IouTracker::new(profiles::ideal_tracker(), 1);
        let cfg = OnlineConfig::svaqd();
        let ingested =
            crate::offline::ingest::ingest(&s, "t", &det, &rec, &mut tracker, &cfg).unwrap();
        assert!(!ingested.object_rows.is_empty());
        let out = run_multi_query(
            &queries(),
            &cfg,
            &s,
            &det,
            &rec,
            MultiQueryOptions::default(),
        )
        .unwrap();
        assert_eq!(out.results.len(), 8);
    }
}
