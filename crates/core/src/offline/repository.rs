//! Multi-video repositories.
//!
//! The paper notes (§4.2) that multiple videos are handled "by associating
//! a video identifier to each clip identifier" — operationally, a
//! repository is a directory of per-video ingestion catalogs, queried by
//! running RVAQ per video and merging the ranked results. Adding or
//! removing a video is adding or removing its catalog directory; no global
//! state is rebuilt.

use crate::offline::candidates::candidates_from_catalog;
use crate::offline::rvaq::{rvaq, RvaqOptions};
use crate::offline::scoring::ScoringModel;
use crate::offline::tbclip::QueryTables;
use std::fs;
use std::path::PathBuf;
use vaq_storage::{AccessStats, ClipScoreTable, CostModel, TableKey, VideoCatalog};
use vaq_types::{ClipInterval, Query, Result, VaqError};

/// A directory of per-video ingestion catalogs.
pub struct Repository {
    root: PathBuf,
    catalogs: Vec<VideoCatalog>,
    cost: CostModel,
}

impl Repository {
    /// Opens every catalog under `root` (direct subdirectories holding a
    /// `manifest.json`). Subdirectories without a manifest are ignored —
    /// a crashed ingestion leaves no manifest and therefore no half-read
    /// video.
    pub fn open(root: impl Into<PathBuf>, cost: CostModel) -> Result<Self> {
        let root = root.into();
        let mut catalogs = Vec::new();
        for entry in fs::read_dir(&root)? {
            let path = entry?.path();
            if path.is_dir() && path.join("manifest.json").exists() {
                catalogs.push(VideoCatalog::open(&path, cost)?);
            }
        }
        catalogs.sort_by(|a, b| a.manifest().name.cmp(&b.manifest().name));
        Ok(Self {
            root,
            catalogs,
            cost,
        })
    }

    /// Ingests `output` into the repository as `root/<video name>` and
    /// registers it.
    pub fn add(&mut self, output: &crate::offline::ingest::IngestOutput) -> Result<()> {
        let dir = self.root.join(&output.name);
        if dir.exists() {
            return Err(VaqError::Storage(format!(
                "repository already holds a video named {:?}",
                output.name
            )));
        }
        output.write_catalog(&dir)?;
        self.catalogs.push(VideoCatalog::open(&dir, self.cost)?);
        self.catalogs
            .sort_by(|a, b| a.manifest().name.cmp(&b.manifest().name));
        Ok(())
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.catalogs.len()
    }

    /// Whether the repository holds no videos.
    pub fn is_empty(&self) -> bool {
        self.catalogs.is_empty()
    }

    /// Video names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.catalogs
            .iter()
            .map(|c| c.manifest().name.as_str())
            .collect()
    }

    /// The catalog of a named video.
    pub fn catalog(&self, name: &str) -> Option<&VideoCatalog> {
        self.catalogs.iter().find(|c| c.manifest().name == name)
    }
}

/// One repository-level result: a sequence in a specific video.
#[derive(Debug, Clone, PartialEq)]
pub struct RepoResult {
    /// The video the sequence comes from.
    pub video: String,
    /// The sequence.
    pub interval: ClipInterval,
    /// Its ranking score.
    pub score: f64,
}

/// Top-K sequences across every video of the repository. Videos that were
/// ingested without one of the queried types simply contribute no
/// candidates (the type never appeared in them).
pub fn query_repository(
    repo: &Repository,
    query: &Query,
    scoring: &dyn ScoringModel,
    k: usize,
) -> Result<(Vec<RepoResult>, AccessStats)> {
    let mut merged: Vec<RepoResult> = Vec::new();
    let mut stats = AccessStats::default();
    for catalog in &repo.catalogs {
        let queried_present = catalog.has_table(TableKey::Action(query.action))
            && query
                .objects
                .iter()
                .all(|&o| catalog.has_table(TableKey::Object(o)));
        if !queried_present {
            continue;
        }
        let pq = candidates_from_catalog(catalog, query)?;
        if pq.is_empty() {
            continue;
        }
        let action_table = catalog.table(TableKey::Action(query.action))?;
        let object_tables: Vec<_> = query
            .objects
            .iter()
            .map(|&o| catalog.table(TableKey::Object(o)))
            .collect::<Result<_>>()?;
        let tables = QueryTables {
            action: &action_table,
            objects: object_tables
                .iter()
                .map(|t| t as &dyn ClipScoreTable)
                .collect(),
        };
        let result = rvaq(&tables, &pq, scoring, &RvaqOptions::new(k));
        stats = stats.merge(&result.stats);
        merged.extend(
            result
                .sequences
                .into_iter()
                .map(|(interval, score)| RepoResult {
                    video: catalog.manifest().name.clone(),
                    interval,
                    score,
                }),
        );
    }
    merged.sort_by(|a, b| b.score.total_cmp(&a.score));
    merged.truncate(k);
    Ok((merged, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::ingest::ingest;
    use crate::offline::scoring::PaperScoring;
    use crate::OnlineConfig;
    use vaq_detect::{profiles, IouTracker, SimulatedActionRecognizer, SimulatedObjectDetector};
    use vaq_types::{ActionType, ObjectType, VideoGeometry};
    use vaq_video::SceneScriptBuilder;

    fn o(i: u32) -> ObjectType {
        ObjectType::new(i)
    }
    fn a(i: u32) -> ActionType {
        ActionType::new(i)
    }

    /// Two videos: the second's sequence scores higher (more instances).
    fn make_repo(tag: &str) -> (Repository, Query) {
        let root = std::env::temp_dir().join(format!("vaq-repo-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 4, 1);
        let mut repo = Repository::open(&root, CostModel::FREE).unwrap();

        for (name, instances) in [("alpha", 1u32), ("beta", 3u32)] {
            let mut b = SceneScriptBuilder::new(1000, VideoGeometry::PAPER_DEFAULT);
            for _ in 0..instances {
                b.object_span(o(1), 100, 600).unwrap();
            }
            b.action_span(a(0), 200, 500).unwrap();
            let script = b.build();
            let mut tracker = IouTracker::new(profiles::ideal_tracker(), 1);
            let out = ingest(
                &script,
                name,
                &det,
                &rec,
                &mut tracker,
                &OnlineConfig::svaqd(),
            )
            .unwrap();
            repo.add(&out).unwrap();
        }
        (repo, Query::new(a(0), vec![o(1)]))
    }

    #[test]
    fn repository_opens_and_lists_videos() {
        let (repo, _) = make_repo("list");
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.names(), vec!["alpha", "beta"]);
        assert!(repo.catalog("alpha").is_some());
        assert!(repo.catalog("gamma").is_none());
    }

    #[test]
    fn cross_video_ranking_prefers_the_stronger_video() {
        let (repo, query) = make_repo("rank");
        let (results, stats) = query_repository(&repo, &query, &PaperScoring, 2).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].video, "beta", "3 instances outscore 1");
        assert_eq!(results[1].video, "alpha");
        assert!(results[0].score > results[1].score);
        assert!(stats.total() > 0);
    }

    #[test]
    fn k_truncates_across_videos() {
        let (repo, query) = make_repo("k1");
        let (results, _) = query_repository(&repo, &query, &PaperScoring, 1).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].video, "beta");
    }

    #[test]
    fn videos_without_the_queried_action_contribute_nothing() {
        let (repo, _) = make_repo("absent");
        let query = Query::new(a(3), vec![o(1)]); // action never occurs
        let (results, _) = query_repository(&repo, &query, &PaperScoring, 3).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut repo, _) = make_repo("dup");
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 4, 1);
        let mut b = SceneScriptBuilder::new(100, VideoGeometry::PAPER_DEFAULT);
        b.object_span(o(1), 0, 100).unwrap();
        let script = b.build();
        let mut tracker = IouTracker::new(profiles::ideal_tracker(), 1);
        let out = ingest(
            &script,
            "alpha",
            &det,
            &rec,
            &mut tracker,
            &OnlineConfig::svaqd(),
        )
        .unwrap();
        assert!(repo.add(&out).is_err());
    }

    #[test]
    fn non_catalog_directories_ignored() {
        let root = std::env::temp_dir().join(format!("vaq-repo-ignore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("not-a-catalog")).unwrap();
        let repo = Repository::open(&root, CostModel::FREE).unwrap();
        assert!(repo.is_empty());
    }
}
