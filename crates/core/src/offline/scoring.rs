//! Scoring functions for ranked (top-K) retrieval — paper §4.1.
//!
//! A [`ScoringModel`] packages the three levels of score combination:
//!
//! * `h` — per type within a clip: combines all detection scores of one
//!   object type (over frames × tracked instances) or one action type
//!   (over shots) into `S_x(c)`. Unconstrained by the paper.
//! * `g` — per clip under a query: combines the queried types' clip scores
//!   into `S_q(c)`. Must be monotone in each argument.
//! * `f` with aggregation operator `⊙` — per sequence: combines clip scores
//!   into `S_q(z)`. Must be (i) monotone in each clip score, (ii)
//!   superset-monotone (`S(z) ≥ S(z')` for `z' ⊆ z`), and (iii)
//!   decomposable over a partition: `S(z) = S(z₁) ⊙ S(z₂)` (Eq. 11).
//!
//! RVAQ's bound refinement (Eqs. 13–14) needs one more derived operation:
//! `f` applied to `n` copies of the same clip score — [`ScoringModel::
//! f_repeat`] — used to bound the contribution of a sequence's unprocessed
//! clips by the current top/bottom frontier score.
//!
//! [`PaperScoring`] is the instantiation the paper evaluates with
//! (`h = Σ`, `g = S_a · Σ S_{o_i}`, `f = Σ`, `⊙ = +`); [`MaxScoring`]
//! demonstrates that any conforming model drops in (`f = max`, `⊙ = max`).

/// A complete scoring model; see the module docs for the required
/// properties of each component.
pub trait ScoringModel: Send + Sync {
    /// `h`: combine one type's detection scores within a clip.
    fn h(&self, scores: &[f64]) -> f64;

    /// `g`: combine the action's and the objects' clip scores into `S_q(c)`.
    fn g(&self, action: f64, objects: &[f64]) -> f64;

    /// The identity of `⊙` (score of the empty sequence).
    fn f_identity(&self) -> f64;

    /// `⊙`: aggregate two disjoint sub-sequence scores (Eq. 11).
    fn f_combine(&self, a: f64, b: f64) -> f64;

    /// `f(s, s, …, s)` over `n` copies — the bound-estimation primitive.
    fn f_repeat(&self, clip_score: f64, n: u64) -> f64;

    /// Folds `f` over explicit clip scores (provided for convenience and
    /// testing; must equal repeated `f_combine`).
    fn f_fold(&self, clip_scores: &[f64]) -> f64 {
        clip_scores
            .iter()
            .fold(self.f_identity(), |acc, &s| self.f_combine(acc, s))
    }
}

/// The paper's experimental instantiation (§5): additive `h` and `f`,
/// multiplicative-in-action `g`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperScoring;

impl ScoringModel for PaperScoring {
    fn h(&self, scores: &[f64]) -> f64 {
        scores.iter().sum()
    }

    fn g(&self, action: f64, objects: &[f64]) -> f64 {
        action * objects.iter().sum::<f64>()
    }

    fn f_identity(&self) -> f64 {
        0.0
    }

    fn f_combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn f_repeat(&self, clip_score: f64, n: u64) -> f64 {
        clip_score * n as f64
    }
}

/// An alternative conforming model: a sequence scores as its best clip.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxScoring;

impl ScoringModel for MaxScoring {
    fn h(&self, scores: &[f64]) -> f64 {
        scores.iter().copied().fold(0.0, f64::max)
    }

    fn g(&self, action: f64, objects: &[f64]) -> f64 {
        action * objects.iter().copied().fold(0.0, f64::max)
    }

    fn f_identity(&self) -> f64 {
        0.0
    }

    fn f_combine(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }

    fn f_repeat(&self, clip_score: f64, n: u64) -> f64 {
        if n == 0 {
            self.f_identity()
        } else {
            clip_score
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn models() -> Vec<Box<dyn ScoringModel>> {
        vec![Box::new(PaperScoring), Box::new(MaxScoring)]
    }

    #[test]
    fn paper_scoring_matches_formulas() {
        let m = PaperScoring;
        assert_eq!(m.h(&[0.5, 0.25, 0.25]), 1.0);
        assert_eq!(m.g(0.5, &[1.0, 3.0]), 2.0);
        assert_eq!(m.f_fold(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(m.f_repeat(2.5, 4), 10.0);
    }

    #[test]
    fn max_scoring_matches_formulas() {
        let m = MaxScoring;
        assert_eq!(m.h(&[0.5, 0.9, 0.25]), 0.9);
        assert_eq!(m.g(0.5, &[1.0, 3.0]), 1.5);
        assert_eq!(m.f_fold(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(m.f_repeat(2.5, 100), 2.5);
    }

    #[test]
    fn empty_inputs() {
        for m in models() {
            assert_eq!(m.h(&[]), 0.0);
            assert_eq!(m.f_fold(&[]), m.f_identity());
        }
    }

    proptest! {
        #[test]
        fn prop_f_repeat_equals_fold_of_copies(s in 0.0f64..100.0, n in 0u64..40) {
            for m in models() {
                let copies = vec![s; n as usize];
                prop_assert!((m.f_repeat(s, n) - m.f_fold(&copies)).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_partition_decomposition(
            xs in proptest::collection::vec(0.0f64..50.0, 0..20),
            cut in 0usize..20,
        ) {
            // Eq. 11: S(z) = S(z1) ⊙ S(z2) for any partition.
            for m in models() {
                let cut = cut.min(xs.len());
                let whole = m.f_fold(&xs);
                let parts = m.f_combine(m.f_fold(&xs[..cut]), m.f_fold(&xs[cut..]));
                prop_assert!((whole - parts).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_superset_monotone(
            xs in proptest::collection::vec(0.0f64..50.0, 1..20),
            drop in 0usize..19,
        ) {
            // Sub-sequence scores never exceed the full sequence's.
            for m in models() {
                let drop = drop.min(xs.len() - 1);
                let sub = m.f_fold(&xs[drop..]);
                prop_assert!(m.f_fold(&xs) + 1e-12 >= sub);
            }
        }

        #[test]
        fn prop_g_monotone(
            a in 0.0f64..5.0, delta in 0.0f64..5.0,
            os in proptest::collection::vec(0.0f64..5.0, 1..5),
            idx in 0usize..4,
        ) {
            for m in models() {
                // Monotone in the action score.
                prop_assert!(m.g(a + delta, &os) + 1e-12 >= m.g(a, &os));
                // Monotone in each object score.
                let idx = idx.min(os.len() - 1);
                let mut os2 = os.clone();
                os2[idx] += delta;
                prop_assert!(m.g(a, &os2) + 1e-12 >= m.g(a, &os));
            }
        }
    }
}
