//! The offline comparison algorithms of §5.1.
//!
//! * [`fa`] — Fagin's Algorithm adapted to sequences: sorted access in
//!   parallel over the queried tables produces clips in rank order; every
//!   newly seen clip is completed by random accesses (including clips that
//!   turn out to lie outside `P_q` — the adaptation's fundamental waste);
//!   the run ends when every clip of every candidate sequence has been
//!   produced, because sequence scores need all their clips.
//! * [`rvaq_noskip`] — RVAQ with the §4.3 skip mechanism disabled
//!   (bounds still refine and the stopping condition still applies, but no
//!   clip is ever added to `C_skip` beyond the initial `C(X) \ C(P_q)`).
//! * [`pq_traverse`] — scores every clip of every sequence in `P_q`
//!   directly (one lookup per queried table per clip) and sorts; its cost is
//!   exactly proportional to `|C(P_q)|` and independent of `K`.

use crate::offline::rvaq::{rvaq, RvaqOptions, TopKResult};
use crate::offline::scoring::ScoringModel;
use crate::offline::tbclip::QueryTables;
use std::collections::HashMap;
use std::time::Instant;
use vaq_types::{ClipId, ClipInterval, SequenceSet};

/// RVAQ without the skip mechanism (the paper's RVAQ-noSkip).
pub fn rvaq_noskip(
    tables: &QueryTables<'_>,
    pq: &SequenceSet,
    scoring: &dyn ScoringModel,
    k: usize,
) -> TopKResult {
    rvaq(tables, pq, scoring, &RvaqOptions::no_skip(k))
}

/// The `P_q`-Traverse baseline: direct scoring of all candidate clips.
pub fn pq_traverse(
    tables: &QueryTables<'_>,
    pq: &SequenceSet,
    scoring: &dyn ScoringModel,
    k: usize,
) -> TopKResult {
    let started = Instant::now();
    tables.reset_stats();
    let mut sequences: Vec<(ClipInterval, f64)> = pq
        .intervals()
        .iter()
        .map(|&iv| {
            let score = iv.clips().fold(scoring.f_identity(), |acc, c| {
                scoring.f_combine(acc, tables.clip_score(c, scoring))
            });
            (iv, score)
        })
        .collect();
    sequences.sort_by(|a, b| b.1.total_cmp(&a.1));
    sequences.truncate(k);
    TopKResult {
        sequences,
        stats: tables.stats(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        iterations: pq.total_clips(),
    }
}

/// Fagin's Algorithm adapted to sequence results (§5.1's FA baseline).
pub fn fa(
    tables: &QueryTables<'_>,
    pq: &SequenceSet,
    scoring: &dyn ScoringModel,
    k: usize,
) -> TopKResult {
    let started = Instant::now();
    tables.reset_stats();
    let num_tables = tables.num_tables();
    let max_len = tables.max_len();

    let needed: u64 = pq.total_clips();
    let mut produced = 0u64;
    let mut scores: HashMap<ClipId, f64> = HashMap::new();
    let mut seen_count: HashMap<ClipId, u32> = HashMap::new();
    let mut seq_scores: Vec<f64> = vec![scoring.f_identity(); pq.len()];
    let mut stamp = 0usize;
    let mut iterations = 0u64;

    while produced < needed && stamp < max_len {
        iterations += 1;
        for ti in 0..num_tables {
            let table = if ti == 0 {
                tables.action
            } else {
                tables.objects[ti - 1]
            };
            let Some(row) = table.sorted_access(stamp) else {
                continue;
            };
            let count = seen_count.entry(row.clip).or_insert(0);
            *count += 1;
            if *count == 1 {
                // First sighting: complete the clip's score by random
                // accesses to every table (FA has no bound machinery to
                // defer them, and clips outside P_q are completed too —
                // the row's membership is only known afterwards).
                let s = tables.clip_score(row.clip, scoring);
                scores.insert(row.clip, s);
                if let Some(j) = pq.find(row.clip) {
                    seq_scores[j] = scoring.f_combine(seq_scores[j], s);
                    produced += 1;
                }
            }
        }
        stamp += 1;
    }

    let mut sequences: Vec<(ClipInterval, f64)> = pq
        .intervals()
        .iter()
        .zip(seq_scores)
        .map(|(&iv, s)| (iv, s))
        .collect();
    sequences.sort_by(|a, b| b.1.total_cmp(&a.1));
    sequences.truncate(k);
    TopKResult {
        sequences,
        stats: tables.stats(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::scoring::PaperScoring;
    use vaq_storage::{CostModel, MemTable, ScoreRow};

    /// 60 clips; P_q covers three 5-clip sequences; the rest is noise that
    /// FA must wade through.
    fn setup() -> (MemTable, MemTable, SequenceSet) {
        let mut action = Vec::new();
        let mut object = Vec::new();
        for c in 0..60u64 {
            let in_seq = matches!(c, 5..=9 | 25..=29 | 45..=49);
            let boost = if in_seq { (c / 20 + 1) as f64 } else { 0.4 };
            // Noise clips climb to ~1.1 in the action table, interleaving
            // above the weakest candidate sequence — FA must wade through
            // them (and random-access them) before it can finish.
            let action_score = if in_seq {
                boost + (c as f64 * 0.003)
            } else {
                0.2 + c as f64 * 0.015
            };
            action.push(ScoreRow {
                clip: ClipId::new(c),
                score: action_score,
            });
            object.push(ScoreRow {
                clip: ClipId::new(c),
                score: 1.0 + boost,
            });
        }
        let pq = SequenceSet::from_intervals(vec![
            ClipInterval::new(5, 9),
            ClipInterval::new(25, 29),
            ClipInterval::new(45, 49),
        ]);
        (
            MemTable::new(action, CostModel::FREE),
            MemTable::new(object, CostModel::FREE),
            pq,
        )
    }

    #[test]
    fn all_algorithms_agree_on_topk() {
        let (a, o, pq) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        for k in 1..=3 {
            let r_rvaq = rvaq(&tables, &pq, &PaperScoring, &RvaqOptions::new(k));
            let r_noskip = rvaq_noskip(&tables, &pq, &PaperScoring, k);
            let r_trav = pq_traverse(&tables, &pq, &PaperScoring, k);
            let r_fa = fa(&tables, &pq, &PaperScoring, k);
            for other in [&r_noskip, &r_trav, &r_fa] {
                assert_eq!(r_rvaq.sequences.len(), other.sequences.len(), "k={k}");
                for (x, y) in r_rvaq.sequences.iter().zip(&other.sequences) {
                    assert_eq!(x.0, y.0, "k={k}");
                    assert!((x.1 - y.1).abs() < 1e-9, "k={k}: {} vs {}", x.1, y.1);
                }
            }
        }
    }

    #[test]
    fn cost_ordering_matches_paper() {
        let (a, o, pq) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let k = 1;
        let r_rvaq = rvaq(&tables, &pq, &PaperScoring, &RvaqOptions::new(k));
        let r_noskip = rvaq_noskip(&tables, &pq, &PaperScoring, k);
        let r_fa = fa(&tables, &pq, &PaperScoring, k);
        // FA wastes random accesses on clips outside P_q.
        assert!(
            r_fa.stats.random > r_noskip.stats.random,
            "FA {} vs noSkip {}",
            r_fa.stats.random,
            r_noskip.stats.random
        );
        assert!(
            r_noskip.stats.random >= r_rvaq.stats.random,
            "noSkip {} vs RVAQ {}",
            r_noskip.stats.random,
            r_rvaq.stats.random
        );
    }

    #[test]
    fn pq_traverse_cost_independent_of_k() {
        let (a, o, pq) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let r1 = pq_traverse(&tables, &pq, &PaperScoring, 1);
        let r3 = pq_traverse(&tables, &pq, &PaperScoring, 3);
        assert_eq!(r1.stats.total(), r3.stats.total());
        // 15 candidate clips × 2 tables.
        assert_eq!(r1.stats.random, 30);
    }

    #[test]
    fn fa_produces_every_candidate_clip() {
        let (a, o, pq) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let r = fa(&tables, &pq, &PaperScoring, 3);
        // Scores of all three sequences are fully computed.
        assert_eq!(r.sequences.len(), 3);
        assert!(r.sequences.iter().all(|(_, s)| *s > 0.0));
    }

    mod agreement {
        use super::super::*;
        use crate::offline::scoring::{MaxScoring, PaperScoring};
        use proptest::prelude::*;
        use vaq_storage::{CostModel, MemTable, ScoreRow};

        /// Random workload: disjoint candidate sequences with random
        /// per-clip scores in two tables, plus non-candidate noise clips.
        fn arb_workload() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, SequenceSet)> {
            (
                proptest::collection::vec((1u64..6, 1u64..4), 1..7),
                proptest::num::u64::ANY,
            )
                .prop_map(|(shape, seed)| {
                    // Deterministic pseudo-random scores from the seed.
                    let mut state = seed | 1;
                    let mut next = move || {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as f64) / (1u64 << 31) as f64
                    };
                    let mut intervals = Vec::new();
                    let mut cursor = 0u64;
                    for &(len, gap) in &shape {
                        intervals.push(ClipInterval::new(cursor, cursor + len - 1));
                        cursor += len + gap;
                    }
                    let total = cursor + 3;
                    let action: Vec<f64> = (0..total).map(|_| next() * 10.0).collect();
                    let object: Vec<f64> = (0..total).map(|_| next() * 5.0).collect();
                    (action, object, SequenceSet::from_intervals(intervals))
                })
        }

        fn tables(scores: &[f64]) -> MemTable {
            MemTable::new(
                scores
                    .iter()
                    .enumerate()
                    .map(|(c, &s)| ScoreRow {
                        clip: ClipId::new(c as u64),
                        score: s,
                    })
                    .collect(),
                CostModel::FREE,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// RVAQ, RVAQ-noSkip, FA and Pq-Traverse must return the same
            /// top-K intervals and scores on any workload — for both
            /// conforming scoring models.
            #[test]
            fn prop_all_algorithms_agree(
                (action, object, pq) in arb_workload(),
                k in 1usize..5,
            ) {
                let a = tables(&action);
                let o = tables(&object);
                let qt = QueryTables { action: &a, objects: vec![&o] };
                let k = k.min(pq.len());
                for scoring in [&PaperScoring as &dyn crate::offline::scoring::ScoringModel,
                                &MaxScoring] {
                    let reference = pq_traverse(&qt, &pq, scoring, k);
                    for result in [
                        rvaq(&qt, &pq, scoring, &RvaqOptions::new(k)),
                        rvaq_noskip(&qt, &pq, scoring, k),
                        fa(&qt, &pq, scoring, k),
                    ] {
                        prop_assert_eq!(result.sequences.len(), reference.sequences.len());
                        for (x, y) in result.sequences.iter().zip(&reference.sequences) {
                            prop_assert!((x.1 - y.1).abs() < 1e-9,
                                "score mismatch {} vs {}", x.1, y.1);
                        }
                        // Interval sets must match (order may differ on ties).
                        let mut got: Vec<_> = result.sequences.iter().map(|s| s.0).collect();
                        let mut want: Vec<_> = reference.sequences.iter().map(|s| s.0).collect();
                        got.sort();
                        want.sort();
                        prop_assert_eq!(got, want);
                    }
                }
            }

            /// RVAQ's reported scores equal the direct fold of clip scores.
            #[test]
            fn prop_rvaq_scores_are_exact(
                (action, object, pq) in arb_workload(),
            ) {
                let a = tables(&action);
                let o = tables(&object);
                let qt = QueryTables { action: &a, objects: vec![&o] };
                let scoring = PaperScoring;
                let result = rvaq(&qt, &pq, &scoring, &RvaqOptions::new(pq.len()));
                for (iv, score) in &result.sequences {
                    let direct: f64 = iv
                        .clips()
                        .map(|c| qt.clip_score(c, &scoring))
                        .sum();
                    prop_assert!((score - direct).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn empty_pq_is_graceful_everywhere() {
        let (a, o, _) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let empty = SequenceSet::empty();
        assert!(fa(&tables, &empty, &PaperScoring, 3).sequences.is_empty());
        assert!(pq_traverse(&tables, &empty, &PaperScoring, 3)
            .sequences
            .is_empty());
        assert!(rvaq_noskip(&tables, &empty, &PaperScoring, 3)
            .sequences
            .is_empty());
    }
}
