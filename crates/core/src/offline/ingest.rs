//! The ingestion phase — paper §4.2.
//!
//! Queries are unknown at ingestion time, so the video is processed once for
//! *every* object type and action type the deployed models support:
//!
//! 1. **Clip score tables.** For each type `x` and each clip `c`, the score
//!    `S_x(c) = h(all detection scores of x in c)` is computed — for objects
//!    over frames × tracked instances (`S_{o_i}^t(v)`), for actions over
//!    shots — and materialized into `table_x : {cid, Score}` ordered by
//!    score. Clips with no detections of a type are omitted (score 0).
//! 2. **Individual sequences.** Per type, positive clips are determined
//!    exactly as SVAQD would (per-type background-rate estimator + critical
//!    value; Eqs. 1–2) and merged into the maximal runs `P_{o_i}` / `P_{a_j}`.
//!
//! The output can be kept in memory ([`IngestOutput::mem_tables`]) or
//! written as a [`vaq_storage::VideoCatalog`]
//! ([`IngestOutput::write_catalog`]).

use crate::config::{OnlineConfig, ParameterPolicy};
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;
use trace::Tracer;
use vaq_detect::{ActionRecognizer, InferenceStats, IouTracker, ObjectDetector};
use vaq_scanstats::{BackgroundRateEstimator, CriticalValueCache, ScanConfig};
use vaq_storage::{CatalogManifest, CostModel, MemTable, ScoreRow, TableKey};
use vaq_types::{conv, ActionType, ClipId, ObjectType, Result, SequenceSet};
use vaq_video::{SceneScript, VideoStream};

/// Per-type state threaded through the clip scan.
struct TypeState {
    estimator: Option<BackgroundRateEstimator>,
    k_crit: u64,
    rows: Vec<ScoreRow>,
    indicator: Vec<bool>,
    /// Censor-dilation buffer: (OUs, events) of the last below-threshold
    /// clip, awaiting confirmation that its successor is also below.
    pending: Option<(u64, u64)>,
    pending_ok: bool,
    prev_below: bool,
}

impl TypeState {
    fn new(
        policy: &ParameterPolicy,
        p0: f64,
        bandwidth_ou: f64,
        cache: &CriticalValueCache,
    ) -> Result<Self> {
        let estimator = match policy {
            ParameterPolicy::Static => None,
            // Seed-only prior weight; see `online::engine` for rationale.
            ParameterPolicy::Dynamic { .. } => Some(BackgroundRateEstimator::with_prior_weight(
                bandwidth_ou,
                p0,
                bandwidth_ou * 0.2,
            )?),
        };
        Ok(Self {
            estimator,
            k_crit: cache.get(p0),
            rows: Vec::new(),
            indicator: Vec::new(),
            pending: None,
            pending_ok: false,
            prev_below: false,
        })
    }

    fn absorb_clip(
        &mut self,
        clip: ClipId,
        score: f64,
        positives: u64,
        ou_per_clip: u64,
        cache: &CriticalValueCache,
    ) {
        let positive_clip = positives >= self.k_crit;
        self.indicator.push(positive_clip);
        if score > 0.0 {
            self.rows.push(ScoreRow { clip, score });
        }
        // Background estimation censors clips whose event count reaches
        // clamp(k_crit, 2, ⌈w/2⌉), with one-clip dilation on both sides —
        // §3.2: the background probability is the prediction rate when the
        // predicate is NOT satisfied. See the detailed reasoning in
        // `online::engine` (same rule, same rationale).
        let censor = self.k_crit.max(2).min(ou_per_clip.div_ceil(2)).max(2);
        let below = positives < censor;
        if below {
            if let Some((n, m)) = self.pending.take() {
                if self.pending_ok {
                    if let Some(est) = &mut self.estimator {
                        est.observe_block_uniform(n, m);
                        self.k_crit = cache.get(est.estimate());
                    }
                }
            }
            self.pending = Some((ou_per_clip, positives.min(ou_per_clip)));
            self.pending_ok = self.prev_below;
        } else {
            self.pending = None;
        }
        self.prev_below = below;
    }
}

/// The materialized ingestion result for one video.
pub struct IngestOutput {
    /// Video name (catalog identity).
    pub name: String,
    /// Frames processed.
    pub num_frames: u64,
    /// Geometry used.
    pub geometry: vaq_types::VideoGeometry,
    /// Per-object-type score rows (non-zero clips only).
    pub object_rows: BTreeMap<ObjectType, Vec<ScoreRow>>,
    /// Per-action-type score rows.
    pub action_rows: BTreeMap<ActionType, Vec<ScoreRow>>,
    /// Per-object-type individual sequences `P_{o_i}`.
    pub object_sequences: BTreeMap<ObjectType, SequenceSet>,
    /// Per-action-type individual sequences `P_{a_j}`.
    pub action_sequences: BTreeMap<ActionType, SequenceSet>,
    /// Inference cost of the ingestion pass.
    pub stats: InferenceStats,
}

impl IngestOutput {
    /// Builds in-memory tables for the queried types.
    pub fn mem_tables(
        &self,
        cost: CostModel,
    ) -> (
        BTreeMap<ObjectType, MemTable>,
        BTreeMap<ActionType, MemTable>,
    ) {
        let objects = self
            .object_rows
            .iter()
            .map(|(&o, rows)| (o, MemTable::new(rows.clone(), cost)))
            .collect();
        let actions = self
            .action_rows
            .iter()
            .map(|(&a, rows)| (a, MemTable::new(rows.clone(), cost)))
            .collect();
        (objects, actions)
    }

    /// Writes the output as an on-disk catalog.
    pub fn write_catalog(&self, dir: &Path) -> Result<CatalogManifest> {
        let mut writer = vaq_storage::catalog::CatalogWriter::create(
            dir,
            self.name.clone(),
            self.geometry,
            self.num_frames,
        )?;
        for (&o, rows) in &self.object_rows {
            writer.add(
                TableKey::Object(o),
                rows.clone(),
                &self.object_sequences[&o],
            )?;
        }
        for (&a, rows) in &self.action_rows {
            writer.add(
                TableKey::Action(a),
                rows.clone(),
                &self.action_sequences[&a],
            )?;
        }
        writer.finish()
    }
}

/// Everything one clip contributes to the sequential merge phase: the
/// per-type accumulator values, sparse over the types actually seen.
struct ClipAccum {
    clip: ClipId,
    frames: u64,
    shots: u64,
    /// `(type index, h-combined score, positive OUs)`, ascending by index.
    obj: Vec<(usize, f64, u64)>,
    act: Vec<(usize, f64, u64)>,
}

/// Model pass over a contiguous range of clips — the embarrassingly
/// parallel half of ingestion. Pure per-clip work: no estimator feedback,
/// no critical values, so disjoint ranges can run on different threads.
///
/// The tracker is per-range: track identifiers then differ across shard
/// boundaries, but ingestion aggregates `detection.score` per *type* and
/// never reads the identifiers ([`IouTracker::update`] returns each input
/// detection unchanged, only annotated), so the accumulators are
/// unaffected. The parallel-determinism test enforces this.
#[allow(clippy::too_many_arguments)]
fn scan_clips(
    script: &SceneScript,
    clips: Range<u64>,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    tracker: &mut IouTracker,
    config: &OnlineConfig,
    obj_universe: usize,
    act_universe: usize,
    tracer: &Tracer,
    parent: Option<u64>,
) -> Vec<ClipAccum> {
    // Shard span: explicit parent because shards may run on worker threads
    // where the root span is not ambient. Tracing never touches the score
    // accumulators, so the bit-identity contract with the serial path holds
    // with tracing on or off (the overhead guard test enforces this).
    let mut shard_span = tracer.span_with_parent("ingest.shard", parent);
    shard_span.record("clip_start", clips.start);
    shard_span.record("clip_end", clips.end);
    let shard_parent = shard_span.id();
    let stream = VideoStream::new(script);
    let mut out = Vec::with_capacity(conv::capacity_hint(clips.end.saturating_sub(clips.start)));
    // Scratch: per-type accumulators for the current clip, plus a touched
    // list so clearing is O(touched) rather than O(universe).
    let mut obj_score_acc = vec![0.0f64; obj_universe];
    let mut obj_pos_acc = vec![0u64; obj_universe];
    let mut obj_touched: Vec<usize> = Vec::new();
    let mut frame_max = vec![0.0f64; obj_universe];
    let mut frame_touched: Vec<usize> = Vec::new();
    let mut act_score_acc = vec![0.0f64; act_universe];
    let mut act_pos_acc = vec![0u64; act_universe];
    let mut act_touched: Vec<usize> = Vec::new();

    for cid in clips {
        let clip = stream.materialize(ClipId::new(cid));
        let mut clip_span = tracer.span_with_parent("ingest.clip", shard_parent);
        clip_span.record("clip", cid);
        // --- objects: detect + track every frame, accumulate per type.
        for frame in &clip.frames {
            let detections = detector.detect(frame);
            let tracked = tracker.update(frame.id, &detections);
            for td in &tracked {
                let ti = td.detection.object.index();
                if ti >= obj_universe {
                    continue;
                }
                if obj_score_acc[ti] == 0.0 && obj_pos_acc[ti] == 0 {
                    obj_touched.push(ti);
                }
                // h is additive over S_{o_i}^t(v) in the paper's sample
                // scoring; tables store the h-combined clip score.
                obj_score_acc[ti] += td.detection.score;
                if frame_max[ti] == 0.0 {
                    frame_touched.push(ti);
                }
                if td.detection.score > frame_max[ti] {
                    frame_max[ti] = td.detection.score;
                }
            }
            for &ti in &frame_touched {
                if frame_max[ti] >= config.t_obj {
                    if obj_pos_acc[ti] == 0 && obj_score_acc[ti] == 0.0 {
                        obj_touched.push(ti);
                    }
                    obj_pos_acc[ti] += 1;
                }
                frame_max[ti] = 0.0;
            }
            frame_touched.clear();
        }
        obj_touched.sort_unstable();
        obj_touched.dedup();
        let obj = obj_touched
            .iter()
            .map(|&ti| (ti, obj_score_acc[ti], obj_pos_acc[ti]))
            .collect();
        for &ti in &obj_touched {
            obj_score_acc[ti] = 0.0;
            obj_pos_acc[ti] = 0;
        }
        obj_touched.clear();

        // --- actions: recognize every shot.
        for shot in &clip.shots {
            for pred in recognizer.recognize(shot) {
                let ai = pred.action.index();
                if ai >= act_universe {
                    continue;
                }
                if act_score_acc[ai] == 0.0 && act_pos_acc[ai] == 0 {
                    act_touched.push(ai);
                }
                act_score_acc[ai] += pred.score;
                if pred.score >= config.t_act {
                    act_pos_acc[ai] += 1;
                }
            }
        }
        act_touched.sort_unstable();
        act_touched.dedup();
        let act = act_touched
            .iter()
            .map(|&ai| (ai, act_score_acc[ai], act_pos_acc[ai]))
            .collect();
        for &ai in &act_touched {
            act_score_acc[ai] = 0.0;
            act_pos_acc[ai] = 0;
        }
        act_touched.clear();

        let num_frames = conv::len_u64(clip.frames.len());
        let num_shots = conv::len_u64(clip.shots.len());
        clip_span.record("frames", num_frames);
        clip_span.record("shots", num_shots);
        tracer.counter_add("ingest.frames", num_frames);
        tracer.counter_add("ingest.shots", num_shots);
        out.push(ClipAccum {
            clip: clip.id,
            frames: num_frames,
            shots: num_shots,
            obj,
            act,
        });
    }
    out
}

/// The sequential merge phase: feeds per-clip accumulators, **in clip
/// order**, through the per-type estimator/critical-value pipeline. This is
/// the order-sensitive half of ingestion and always runs single-threaded —
/// which is what makes the parallel scan deterministic: the estimators see
/// exactly the value sequence the serial pass produces.
#[allow(clippy::too_many_arguments)]
fn assemble(
    name: String,
    script: &SceneScript,
    config: &OnlineConfig,
    obj_universe: usize,
    act_universe: usize,
    latency_ms: (f64, f64, f64),
    accums: Vec<ClipAccum>,
    tracer: &Tracer,
    parent: Option<u64>,
) -> Result<IngestOutput> {
    let mut merge_span = tracer.span_with_parent("ingest.assemble", parent);
    let num_clips = conv::len_u64(accums.len());
    merge_span.record("clips", num_clips);
    tracer.counter_add("ingest.clips", num_clips);
    let geometry = *script.geometry();
    let fpc = geometry.frames_per_clip();
    let spc = geometry.shots_in_clip();
    let (detector_ms, recognizer_ms, tracker_ms) = latency_ms;

    let obj_scan = ScanConfig::new(fpc, config.horizon_clips * fpc, config.alpha)?;
    let act_scan = ScanConfig::new(spc, config.horizon_clips * spc, config.alpha)?;
    let obj_cache = CriticalValueCache::new(obj_scan);
    let act_cache = CriticalValueCache::new(act_scan);
    let (bw_frames, bw_shots) = match config.policy {
        ParameterPolicy::Static => (1.0, 1.0),
        ParameterPolicy::Dynamic {
            bandwidth_clips, ..
        } => (bandwidth_clips * fpc as f64, bandwidth_clips * spc as f64),
    };

    let mut obj_states: Vec<TypeState> = (0..obj_universe)
        .map(|_| TypeState::new(&config.policy, config.p0_obj, bw_frames, &obj_cache))
        .collect::<Result<_>>()?;
    let mut act_states: Vec<TypeState> = (0..act_universe)
        .map(|_| TypeState::new(&config.policy, config.p0_act, bw_shots, &act_cache))
        .collect::<Result<_>>()?;

    let mut stats = InferenceStats::default();
    for accum in &accums {
        stats.record_detector(accum.frames, detector_ms);
        stats.record_tracker(accum.frames, tracker_ms);
        let mut touched = accum.obj.iter().peekable();
        for (ti, state) in obj_states.iter_mut().enumerate() {
            let (score, pos) = match touched.peek() {
                Some(&&(i, s, p)) if i == ti => {
                    touched.next();
                    (s, p)
                }
                _ => (0.0, 0),
            };
            state.absorb_clip(accum.clip, score, pos, fpc, &obj_cache);
        }

        stats.record_recognizer(accum.shots, recognizer_ms);
        let mut touched = accum.act.iter().peekable();
        for (ai, state) in act_states.iter_mut().enumerate() {
            let (score, pos) = match touched.peek() {
                Some(&&(i, s, p)) if i == ai => {
                    touched.next();
                    (s, p)
                }
                _ => (0.0, 0),
            };
            state.absorb_clip(accum.clip, score, pos, spc, &act_cache);
        }
    }

    let object_rows: BTreeMap<ObjectType, Vec<ScoreRow>> = obj_states
        .iter_mut()
        .enumerate()
        .map(|(ti, s)| (ObjectType::from_index(ti), std::mem::take(&mut s.rows)))
        .collect();
    let object_sequences = obj_states
        .iter()
        .enumerate()
        .map(|(ti, s)| {
            (
                ObjectType::from_index(ti),
                SequenceSet::from_indicator(&s.indicator),
            )
        })
        .collect();
    let action_rows: BTreeMap<ActionType, Vec<ScoreRow>> = act_states
        .iter_mut()
        .enumerate()
        .map(|(ai, s)| (ActionType::from_index(ai), std::mem::take(&mut s.rows)))
        .collect();
    let action_sequences = act_states
        .iter()
        .enumerate()
        .map(|(ai, s)| {
            (
                ActionType::from_index(ai),
                SequenceSet::from_indicator(&s.indicator),
            )
        })
        .collect();

    Ok(IngestOutput {
        name,
        num_frames: script.num_frames(),
        geometry,
        object_rows,
        action_rows,
        object_sequences,
        action_sequences,
        stats,
    })
}

/// Runs the ingestion phase over one scripted video.
///
/// `config` supplies thresholds, the scan-statistics parameters and the
/// background-rate policy (SVAQD-style dynamic estimation per §4.2's
/// "Utilizing algorithm SVAQD … we determine the positive clips").
pub fn ingest(
    script: &SceneScript,
    name: impl Into<String>,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    tracker: &mut IouTracker,
    config: &OnlineConfig,
) -> Result<IngestOutput> {
    ingest_traced(
        script,
        name,
        detector,
        recognizer,
        tracker,
        config,
        &Tracer::disabled(),
    )
}

/// [`ingest`] with tracing: opens the `ingest` root span, one `ingest.shard`
/// span for the (single) scan range with nested `ingest.clip` spans, and an
/// `ingest.assemble` span for the sequential merge. Structural counters
/// `ingest.frames` / `ingest.shots` / `ingest.clips` are recorded as well.
/// Tracing is strictly observational: the output is bit-identical to the
/// untraced path.
#[allow(clippy::too_many_arguments)]
pub fn ingest_traced(
    script: &SceneScript,
    name: impl Into<String>,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    tracker: &mut IouTracker,
    config: &OnlineConfig,
    tracer: &Tracer,
) -> Result<IngestOutput> {
    config.validate()?;
    let root = trace::span!(tracer, "ingest", "clips" = script.num_clips());
    let obj_universe = conv::usize_of(detector.universe());
    let act_universe = conv::usize_of(recognizer.universe());
    let latency = (
        detector.latency_ms(),
        recognizer.latency_ms(),
        tracker.latency_ms(),
    );
    let accums = scan_clips(
        script,
        0..script.num_clips(),
        detector,
        recognizer,
        tracker,
        config,
        obj_universe,
        act_universe,
        tracer,
        root.id(),
    );
    assemble(
        name.into(),
        script,
        config,
        obj_universe,
        act_universe,
        latency,
        accums,
        tracer,
        root.id(),
    )
}

/// Parallel ingestion: shards the clip stream into contiguous ranges, scans
/// each range on its own thread, then merges the per-clip accumulators in
/// clip order through the (single-threaded) estimator pipeline.
///
/// **Determinism contract:** the output is bit-identical to [`ingest`] for
/// any `threads >= 1`. Two properties make this hold: (a) per-clip
/// floating-point accumulation happens inside [`scan_clips`] in the same
/// frame/shot order regardless of which thread owns the clip, and (b) all
/// order-sensitive state — background-rate estimators, evolving critical
/// values, inference-cost sums — is updated only in the ordered merge
/// phase. The parallel-determinism test compares every table, sequence and
/// stats field against the serial path at several thread counts.
///
/// `tracker` is a *prototype*: each shard clones it so per-shard tracking
/// state starts fresh at the shard boundary (see [`scan_clips`] for why the
/// accumulators do not depend on cross-shard track identity).
pub fn ingest_parallel(
    script: &SceneScript,
    name: impl Into<String>,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    tracker: &IouTracker,
    config: &OnlineConfig,
    threads: usize,
) -> Result<IngestOutput> {
    ingest_parallel_traced(
        script,
        name,
        detector,
        recognizer,
        tracker,
        config,
        threads,
        &Tracer::disabled(),
    )
}

/// [`ingest_parallel`] with tracing: each shard records its own
/// `ingest.shard` span (explicitly parented under the `ingest.parallel`
/// root, since shards run on worker threads), so per-shard cost is
/// attributable. Span *ids* may interleave differently across runs when
/// `threads > 1`; the output tables remain bit-identical to [`ingest`].
#[allow(clippy::too_many_arguments)]
pub fn ingest_parallel_traced(
    script: &SceneScript,
    name: impl Into<String>,
    detector: &dyn ObjectDetector,
    recognizer: &dyn ActionRecognizer,
    tracker: &IouTracker,
    config: &OnlineConfig,
    threads: usize,
    tracer: &Tracer,
) -> Result<IngestOutput> {
    config.validate()?;
    let threads = conv::len_u64(threads.max(1));
    let root = trace::span!(
        tracer,
        "ingest.parallel",
        "clips" = script.num_clips(),
        "threads" = threads
    );
    let obj_universe = conv::usize_of(detector.universe());
    let act_universe = conv::usize_of(recognizer.universe());
    let latency = (
        detector.latency_ms(),
        recognizer.latency_ms(),
        tracker.latency_ms(),
    );

    let num_clips = script.num_clips();
    let chunk = num_clips.div_ceil(threads).max(1);
    let ranges: Vec<Range<u64>> = (0..threads)
        .map(|i| (i * chunk).min(num_clips)..((i + 1) * chunk).min(num_clips))
        .filter(|r| !r.is_empty())
        .collect();

    let root_id = root.id();
    let accums = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let mut shard_tracker = tracker.clone();
                scope.spawn(move || {
                    scan_clips(
                        script,
                        range,
                        detector,
                        recognizer,
                        &mut shard_tracker,
                        config,
                        obj_universe,
                        act_universe,
                        tracer,
                        root_id,
                    )
                })
            })
            .collect();
        // Shards cover 0..num_clips contiguously in spawn order, so
        // flattening joined results yields accumulators in clip order.
        let mut accums = Vec::with_capacity(conv::capacity_hint(num_clips));
        for handle in handles {
            accums.extend(
                handle
                    .join()
                    .unwrap_or_else(|e| std::panic::resume_unwind(e)),
            );
        }
        accums
    });

    assemble(
        name.into(),
        script,
        config,
        obj_universe,
        act_universe,
        latency,
        accums,
        tracer,
        root_id,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_detect::profiles;
    use vaq_detect::{SimulatedActionRecognizer, SimulatedObjectDetector};
    use vaq_types::{ClipInterval, Query, VideoGeometry};
    use vaq_video::SceneScriptBuilder;

    fn o(i: u32) -> ObjectType {
        ObjectType::new(i)
    }
    fn a(i: u32) -> ActionType {
        ActionType::new(i)
    }

    fn script() -> SceneScript {
        let mut b = SceneScriptBuilder::new(1000, VideoGeometry::PAPER_DEFAULT);
        b.object_span(o(1), 100, 600).unwrap();
        b.object_span(o(2), 0, 1000).unwrap();
        b.action_span(a(0), 250, 750).unwrap();
        b.build()
    }

    fn ideal_ingest(script: &SceneScript) -> IngestOutput {
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 4, 1);
        let mut tracker = IouTracker::new(profiles::ideal_tracker(), 1);
        ingest(
            script,
            "test",
            &det,
            &rec,
            &mut tracker,
            &OnlineConfig::svaqd(),
        )
        .unwrap()
    }

    #[test]
    fn ideal_ingestion_matches_ground_truth_sequences() {
        let s = script();
        let out = ideal_ingest(&s);
        // o1 visible frames 100..600 → clips 2..11.
        assert_eq!(
            out.object_sequences[&o(1)].intervals(),
            &[ClipInterval::new(2, 11)]
        );
        assert_eq!(
            out.object_sequences[&o(2)].intervals(),
            &[ClipInterval::new(0, 19)]
        );
        // action frames 250..750 → clips 5..14.
        assert_eq!(
            out.action_sequences[&a(0)].intervals(),
            &[ClipInterval::new(5, 14)]
        );
        // Types never present have no sequences and no rows.
        assert!(out.object_sequences[&o(5)].is_empty());
        assert!(out.object_rows[&o(5)].is_empty());
    }

    #[test]
    fn scores_reflect_presence_duration() {
        let s = script();
        let out = ideal_ingest(&s);
        // o2 present all 50 frames of every clip at score 1.0 ⇒ h = 50.
        for row in &out.object_rows[&o(2)] {
            assert!((row.score - 50.0).abs() < 1e-9, "score {}", row.score);
        }
        // o1 has 20 rows? No: only clips 2..11 have detections.
        assert_eq!(out.object_rows[&o(1)].len(), 10);
        // Action score: 5 shots × 1.0 on interior clips.
        let interior: Vec<_> = out.action_rows[&a(0)]
            .iter()
            .filter(|r| (5..=14).contains(&r.clip.raw()))
            .collect();
        assert!(interior.iter().all(|r| (r.score - 5.0).abs() < 1e-9));
    }

    #[test]
    fn intersection_gives_query_candidates() {
        let s = script();
        let out = ideal_ingest(&s);
        let q = Query::new(a(0), vec![o(1), o(2)]);
        let pq = crate::offline::candidates::candidates_from_ingest(&out, &q).unwrap();
        // o1: 2..11, o2: 0..19, action: 5..14 ⇒ P_q = 5..11.
        assert_eq!(pq.intervals(), &[ClipInterval::new(5, 11)]);
        assert_eq!(s.ground_truth(&q, 0.5), pq);
    }

    #[test]
    fn catalog_roundtrip() {
        let s = script();
        let out = ideal_ingest(&s);
        let dir = std::env::temp_dir().join(format!("vaq-ingest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = out.write_catalog(&dir).unwrap();
        assert_eq!(manifest.num_clips(), 20);
        let cat = vaq_storage::VideoCatalog::open(&dir, CostModel::FREE).unwrap();
        assert_eq!(
            cat.object_sequences(o(1)).unwrap(),
            &out.object_sequences[&o(1)]
        );
        use vaq_storage::ClipScoreTable as _;
        let t = cat.table(TableKey::Object(o(2))).unwrap();
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn ingestion_accounts_inference() {
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 4, 1);
        let mut tracker = IouTracker::new(profiles::centertrack(), 1);
        let out = ingest(&s, "t", &det, &rec, &mut tracker, &OnlineConfig::svaqd()).unwrap();
        assert_eq!(out.stats.detector_frames, 1000);
        assert_eq!(out.stats.recognizer_shots, 100);
        assert_eq!(out.stats.tracker_frames, 1000);
        assert!(out.stats.inference_ms() > 0.0);
    }

    #[test]
    fn noisy_ingestion_close_to_truth() {
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 8, 42);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 4, 42);
        let mut tracker = IouTracker::new(profiles::centertrack(), 42);
        let out = ingest(&s, "t", &det, &rec, &mut tracker, &OnlineConfig::svaqd()).unwrap();
        let got = &out.object_sequences[&o(1)];
        let want = ClipInterval::new(2, 11);
        assert!(
            got.intervals().iter().any(|iv| iv.iou(&want) >= 0.5),
            "o1 sequences {got} do not match {want}"
        );
    }

    /// Field-by-field comparison of two ingestion outputs, with exact
    /// (bitwise) float equality — the parallel path promises bit-identity,
    /// not approximation.
    fn assert_outputs_identical(a: &IngestOutput, b: &IngestOutput, label: &str) {
        assert_eq!(a.name, b.name, "{label}: name");
        assert_eq!(a.num_frames, b.num_frames, "{label}: num_frames");
        assert_eq!(a.object_rows, b.object_rows, "{label}: object_rows");
        assert_eq!(a.action_rows, b.action_rows, "{label}: action_rows");
        assert_eq!(
            a.object_sequences, b.object_sequences,
            "{label}: object_sequences"
        );
        assert_eq!(
            a.action_sequences, b.action_sequences,
            "{label}: action_sequences"
        );
        assert_eq!(a.stats, b.stats, "{label}: stats");
    }

    #[test]
    fn parallel_ingest_is_bit_identical_to_serial() {
        // Noisy models: if shard boundaries leaked into scores or estimator
        // order, noise would amplify the difference into a table mismatch.
        let s = script();
        let det = SimulatedObjectDetector::new(profiles::mask_rcnn(), 8, 42);
        let rec = SimulatedActionRecognizer::new(profiles::i3d(), 4, 42);
        let cfg = OnlineConfig::svaqd();
        let mut tracker = IouTracker::new(profiles::centertrack(), 42);
        let serial = ingest(&s, "t", &det, &rec, &mut tracker, &cfg).unwrap();

        for threads in [1usize, 2, 8] {
            let proto = IouTracker::new(profiles::centertrack(), 42);
            let par = ingest_parallel(&s, "t", &det, &rec, &proto, &cfg, threads).unwrap();
            assert_outputs_identical(&serial, &par, &format!("threads={threads}"));
        }
    }

    #[test]
    fn parallel_ingest_handles_more_shards_than_clips() {
        let s = script(); // 20 clips
        let det = SimulatedObjectDetector::new(profiles::ideal_object(), 8, 1);
        let rec = SimulatedActionRecognizer::new(profiles::ideal_action(), 4, 1);
        let cfg = OnlineConfig::svaqd();
        let mut tracker = IouTracker::new(profiles::ideal_tracker(), 1);
        let serial = ingest(&s, "t", &det, &rec, &mut tracker, &cfg).unwrap();
        let proto = IouTracker::new(profiles::ideal_tracker(), 1);
        let par = ingest_parallel(&s, "t", &det, &rec, &proto, &cfg, 64).unwrap();
        assert_outputs_identical(&serial, &par, "threads=64");
    }
}
