//! The offline (repository) case — paper §4.
//!
//! * [`scoring`] — the monotone scoring framework (§4.1): `h` combines a
//!   type's detection scores within a clip, `g` combines per-type clip
//!   scores into `S_q(c)`, `f` (with its aggregation operator `⊙`) combines
//!   clip scores into sequence scores.
//! * [`ingest`] — the one-time ingestion phase (§4.2): runs the models over
//!   every clip for *every* type in their universes, materializing clip
//!   score tables and the per-type individual sequences into a
//!   [`vaq_storage::VideoCatalog`].
//! * [`candidates`] — computing `P_q = P_a ⊗ P_{o_1} ⊗ … ⊗ P_{o_I}`
//!   (Eq. 12) by interval sweep.
//! * [`tbclip`] — the TBClip top/bottom iterator (Algorithm 5).
//! * [`rvaq`] — RVAQ (Algorithm 4): bound refinement with skipping.
//! * [`baselines`] — FA, RVAQ-noSkip and Pq-Traverse (§5.1).
//! * [`repository`] — multi-video repositories (directories of catalogs)
//!   with cross-video top-K ranking.

pub mod baselines;
pub mod candidates;
pub mod ingest;
pub mod repository;
pub mod rvaq;
pub mod scoring;
pub mod tbclip;
