//! Candidate sequences `P_q` — paper Eq. 12.
//!
//! A clip can satisfy a query only if it lies in every queried type's
//! individual sequences; the candidates are
//! `P_q = P_a ⊗ P_{o_1} ⊗ … ⊗ P_{o_I}`, computed by the interval sweep in
//! [`vaq_types::SequenceSet::intersect`].

use crate::offline::ingest::IngestOutput;
use vaq_storage::{TableKey, VideoCatalog};
use vaq_types::{Query, Result, SequenceSet, VaqError};

/// Computes `P_q` from explicitly provided individual sequences
/// (action first, then objects in query order).
pub fn candidates(action: &SequenceSet, objects: &[&SequenceSet]) -> SequenceSet {
    let mut acc = action.clone();
    for o in objects {
        if acc.is_empty() {
            break;
        }
        acc = acc.intersect(o);
    }
    acc
}

/// Computes `P_q` from an in-memory ingestion output.
pub fn candidates_from_ingest(out: &IngestOutput, query: &Query) -> Result<SequenceSet> {
    let action = out
        .action_sequences
        .get(&query.action)
        .ok_or_else(|| VaqError::InvalidQuery(format!("action {} not ingested", query.action)))?;
    let objects = query
        .objects
        .iter()
        .map(|o| {
            out.object_sequences
                .get(o)
                .ok_or_else(|| VaqError::InvalidQuery(format!("object {o} not ingested")))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(candidates(action, &objects))
}

/// Computes `P_q` from an opened catalog.
pub fn candidates_from_catalog(catalog: &VideoCatalog, query: &Query) -> Result<SequenceSet> {
    let action = catalog.sequences(TableKey::Action(query.action))?;
    let objects = query
        .objects
        .iter()
        .map(|&o| catalog.sequences(TableKey::Object(o)))
        .collect::<Result<Vec<_>>>()?;
    Ok(candidates(action, &objects))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_types::ClipInterval;

    fn set(ivs: &[(u64, u64)]) -> SequenceSet {
        SequenceSet::from_intervals(ivs.iter().map(|&(s, e)| ClipInterval::new(s, e)).collect())
    }

    #[test]
    fn intersection_over_all_predicates() {
        let action = set(&[(0, 100)]);
        let o1 = set(&[(10, 40), (60, 90)]);
        let o2 = set(&[(20, 70)]);
        let pq = candidates(&action, &[&o1, &o2]);
        assert_eq!(pq, set(&[(20, 40), (60, 70)]));
    }

    #[test]
    fn empty_object_sequences_short_circuit() {
        let action = set(&[(0, 100)]);
        let empty = SequenceSet::empty();
        let o2 = set(&[(20, 70)]);
        let pq = candidates(&action, &[&empty, &o2]);
        assert!(pq.is_empty());
    }

    #[test]
    fn action_only_query_returns_action_sequences() {
        let action = set(&[(5, 9)]);
        assert_eq!(candidates(&action, &[]), action);
    }
}
