//! RVAQ — the bound-refinement top-K algorithm (paper Algorithm 4).
//!
//! For each candidate sequence in `P_q`, RVAQ maintains an upper and a lower
//! bound on its score. Each TBClip step delivers the next top clip `c_top`
//! and bottom clip `c_btm`; the bounds tighten as
//!
//! ```text
//! B_up(i) = f( S_q(c_top) × L_up(i) )  ⊙  S_up(i)        (Eq. 13)
//! B_lo(i) = f( S_q(c_btm) × L_lo(i) )  ⊙  S_lo(i)        (Eq. 14)
//! ```
//!
//! where `S_up/L_up` fold in the processed top clips of the sequence (and
//! symmetrically for the bottom side). The loop stops when the K-th best
//! lower bound dominates every other sequence's upper bound
//! (`B_lo^K ≥ B_up^¬K`, Eq. 15).
//!
//! The *skip* mechanism (§4.3) grows `C_skip`: sequences whose upper bound
//! falls below `B_lo^K` are conclusively out; sequences whose lower bound
//! exceeds `B_up^¬K` are conclusively in (and, when exact scores are not
//! required, their clips stop being accessed too). Disabling the mechanism
//! yields the paper's RVAQ-noSkip baseline.
//!
//! **A completion of the paper's bound bookkeeping.** Eqs. 13–14 as printed
//! track top-processed clips only in the upper bound (`S_up/L_up`) and
//! bottom-processed clips only in the lower bound (`S_lo/L_lo`). Read
//! literally, the lower bound of a *high*-scoring sequence cannot rise until
//! the bottom scan — which starts from the globally worst clips — finally
//! reaches its clips, so the stopping condition `B_lo^K ≥ B_up^¬K` would
//! essentially never fire before exhaustion. Since every clip delivered by
//! either side of TBClip arrives with its *exact* score, the sound and
//! strictly tighter bookkeeping is to fold every known clip score into both
//! bounds: for a sequence with known-score part `S_known` and `L_unknown`
//! remaining clips,
//!
//! ```text
//! B_up = f(S_q(c_top) × L_unknown) ⊙ S_known
//! B_lo = f(S_q(c_btm) × L_unknown) ⊙ S_known
//! ```
//!
//! (valid because unreturned clips score between the bottom and top
//! frontiers). This preserves the paper's access pattern and skip semantics
//! while making early termination actually achievable — with the literal
//! one-sided bookkeeping, RVAQ's reported advantage over `P_q`-Traverse is
//! unobtainable.

use crate::offline::scoring::ScoringModel;
use crate::offline::tbclip::{QueryTables, TbClip};
use std::time::Instant;
use trace::Tracer;
use vaq_storage::AccessStats;
use vaq_types::{conv, ClipId, ClipInterval, SequenceSet};

/// Options controlling an RVAQ run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvaqOptions {
    /// Number of sequences to return.
    pub k: usize,
    /// Whether the §4.3 skip mechanism is active (off = RVAQ-noSkip).
    pub skip_enabled: bool,
    /// Whether to refine the chosen sequences to their exact scores (extra
    /// random accesses on their remaining clips).
    pub exact_scores: bool,
}

impl RvaqOptions {
    /// Standard RVAQ with exact result scores.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            skip_enabled: true,
            exact_scores: true,
        }
    }

    /// The RVAQ-noSkip baseline.
    pub fn no_skip(k: usize) -> Self {
        Self {
            skip_enabled: false,
            ..Self::new(k)
        }
    }
}

/// Result of a top-K run (any offline algorithm).
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The K highest-scoring sequences, best first, with their scores
    /// (exact when `exact_scores` was set, otherwise final lower bounds).
    pub sequences: Vec<(ClipInterval, f64)>,
    /// Access statistics accumulated during the run.
    pub stats: AccessStats,
    /// Wall-clock time of the algorithm itself, ms.
    pub wall_ms: f64,
    /// TBClip invocations (RVAQ variants) or scan rounds (baselines).
    pub iterations: u64,
}

#[derive(Debug)]
struct SeqState {
    interval: ClipInterval,
    b_up: f64,
    b_lo: f64,
    /// `⊙`-fold of the exactly-known clip scores (either frontier).
    s_known: f64,
    /// Clips whose scores are still unknown.
    l_unknown: u64,
    decided_out: bool,
    decided_in: bool,
}

/// Runs RVAQ (Algorithm 4) over the query's tables and candidate sequences.
pub fn rvaq(
    tables: &QueryTables<'_>,
    pq: &SequenceSet,
    scoring: &dyn ScoringModel,
    opts: &RvaqOptions,
) -> TopKResult {
    rvaq_traced(tables, pq, scoring, opts, &Tracer::disabled())
}

/// [`rvaq`] with tracing: opens the `rvaq` root span, one `rvaq.iteration`
/// span per TBClip step (recording the current bound gap
/// `B_up^¬K − B_lo^K`, which converging runs drive to ≤ 0), and the
/// `rvaq.iterations` / `rvaq.decided_out` / `rvaq.decided_in` counters.
pub fn rvaq_traced(
    tables: &QueryTables<'_>,
    pq: &SequenceSet,
    scoring: &dyn ScoringModel,
    opts: &RvaqOptions,
    tracer: &Tracer,
) -> TopKResult {
    let _root = trace::span!(
        tracer,
        "rvaq",
        "candidates" = conv::len_u64(pq.intervals().len()),
        "k" = conv::len_u64(opts.k),
        "skip" = opts.skip_enabled
    );
    // vaq-analyze: allow(determinism) -- wall_ms is reporting-only telemetry; no decision reads it
    let started = Instant::now();
    tables.reset_stats();
    let mut tb = TbClip::new(tables, scoring);

    let mut states: Vec<SeqState> = pq
        .intervals()
        .iter()
        .map(|&interval| SeqState {
            interval,
            b_up: f64::INFINITY,
            b_lo: f64::NEG_INFINITY,
            s_known: scoring.f_identity(),
            l_unknown: interval.len(),
            decided_out: false,
            decided_in: false,
        })
        .collect();

    let k = opts.k.min(states.len());
    let mut iterations = 0u64;
    let mut known: std::collections::HashSet<ClipId> = std::collections::HashSet::new();
    let mut top_frontier: Option<f64> = None;
    let mut btm_frontier: Option<f64> = None;

    // With K ≥ |P_q| every sequence is a result; only exact scoring remains.
    let needs_loop = k < states.len();

    while needs_loop {
        iterations += 1;
        let mut iter_span = trace::span!(tracer, "rvaq.iteration", "iteration" = iterations);
        tracer.counter_add("rvaq.iterations", 1);
        // Snapshot the decided flags so the skip closure does not hold a
        // borrow across the bound updates below.
        let decided: Vec<(bool, bool)> = states
            .iter()
            .map(|s| (s.decided_out, s.decided_in))
            .collect();
        let skip = skip_predicate(pq, decided, opts);
        let step = tb.next(&skip);
        if step.top.is_none() && step.btm.is_none() {
            break;
        }

        // Fold the delivered clips' exact scores into their sequences
        // (guarding against a clip arriving from both frontiers).
        for row in [step.top, step.btm].into_iter().flatten() {
            if known.insert(row.clip) {
                if let Some(j) = pq.find(row.clip) {
                    let st = &mut states[j];
                    st.s_known = scoring.f_combine(st.s_known, row.score);
                    st.l_unknown -= 1;
                }
            }
        }
        if let Some(top) = step.top {
            top_frontier = Some(top.score);
        }
        if let Some(btm) = step.btm {
            btm_frontier = Some(btm.score);
        }

        // Re-estimate both bounds of every live sequence from the current
        // frontiers (Eqs. 13–14, unified bookkeeping — see module docs).
        for st in states.iter_mut().filter(|s| !s.decided_out) {
            if let Some(tf) = top_frontier {
                st.b_up = scoring.f_combine(scoring.f_repeat(tf, st.l_unknown), st.s_known);
            }
            if let Some(bf) = btm_frontier {
                st.b_lo = scoring.f_combine(scoring.f_repeat(bf, st.l_unknown), st.s_known);
            }
        }

        // Rank by lower bound; the K best form PQ_lo^K.
        let (blo_k, bup_notk) = frontier(&states, k);
        if opts.skip_enabled {
            for st in states
                .iter_mut()
                .filter(|s| !s.decided_out && !s.decided_in)
            {
                if st.b_up < blo_k {
                    st.decided_out = true;
                    tracer.counter_add("rvaq.decided_out", 1);
                } else if st.b_lo > bup_notk {
                    st.decided_in = true;
                    tracer.counter_add("rvaq.decided_in", 1);
                }
            }
        }
        // The gap the stopping rule (Eq. 15) drives to ≤ 0; +∞ until both
        // frontiers have produced their first clip.
        iter_span.record("bound_gap", bup_notk - blo_k);
        if blo_k >= bup_notk {
            break;
        }
    }

    // Select the K sequences with the highest lower bounds (exact at
    // convergence), then optionally refine to exact scores.
    let mut order: Vec<usize> = (0..states.len())
        .filter(|&i| !states[i].decided_out)
        .collect();
    order.sort_by(|&a, &b| {
        states[b]
            .b_lo
            .total_cmp(&states[a].b_lo)
            .then(states[b].b_up.total_cmp(&states[a].b_up))
    });
    order.truncate(k);

    let mut sequences: Vec<(ClipInterval, f64)> = order
        .into_iter()
        .map(|i| {
            let iv = states[i].interval;
            let score = if opts.exact_scores {
                exact_sequence_score(&mut tb, scoring, &iv)
            } else {
                states[i].b_lo
            };
            (iv, score)
        })
        .collect();
    sequences.sort_by(|a, b| b.1.total_cmp(&a.1));

    TopKResult {
        sequences,
        stats: tables.stats(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        iterations,
    }
}

/// `(B_lo^K, B_up^¬K)` for the current bound state.
fn frontier(states: &[SeqState], k: usize) -> (f64, f64) {
    let mut alive: Vec<usize> = (0..states.len())
        .filter(|&i| !states[i].decided_out)
        .collect();
    alive.sort_by(|&a, &b| states[b].b_lo.total_cmp(&states[a].b_lo));
    let top_set = &alive[..k.min(alive.len())];
    let blo_k = top_set
        .iter()
        .map(|&i| states[i].b_lo)
        .fold(f64::INFINITY, f64::min);
    let rest = &alive[k.min(alive.len())..];
    let bup_notk = rest
        .iter()
        .map(|&i| states[i].b_up)
        .fold(f64::NEG_INFINITY, f64::max);
    (blo_k, bup_notk)
}

fn skip_predicate<'a>(
    pq: &'a SequenceSet,
    decided: Vec<(bool, bool)>,
    opts: &'a RvaqOptions,
) -> impl Fn(ClipId) -> bool + 'a {
    move |c: ClipId| match pq.find(c) {
        None => true, // C_skip is initialized to C(X) \ C(P_q)
        Some(i) => {
            let (out, inn) = decided[i];
            out || (inn && !opts.exact_scores)
        }
    }
}

/// Exact `S_q(z)` by folding the cached/randomly-accessed clip scores.
pub(crate) fn exact_sequence_score(
    tb: &mut TbClip<'_, '_>,
    scoring: &dyn ScoringModel,
    interval: &ClipInterval,
) -> f64 {
    interval.clips().fold(scoring.f_identity(), |acc, c| {
        scoring.f_combine(acc, tb.clip_score_cached(c))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::scoring::PaperScoring;
    use vaq_storage::{ClipScoreTable, CostModel, MemTable, ScoreRow};

    /// A workload with 4 candidate sequences of very different scores.
    /// Clips 0..40; sequences [0,4], [10,14], [20,24], [30,34].
    fn setup() -> (MemTable, MemTable, SequenceSet) {
        let mut action = Vec::new();
        let mut object = Vec::new();
        for c in 0..40u64 {
            // Sequence block index drives the score magnitude.
            let block = c / 10;
            let within = (c % 10) as f64;
            action.push(ScoreRow {
                clip: ClipId::new(c),
                score: 1.0 + block as f64 + within * 0.01,
            });
            object.push(ScoreRow {
                clip: ClipId::new(c),
                score: 2.0 + block as f64,
            });
        }
        let pq = SequenceSet::from_intervals(vec![
            ClipInterval::new(0, 4),
            ClipInterval::new(10, 14),
            ClipInterval::new(20, 24),
            ClipInterval::new(30, 34),
        ]);
        (
            MemTable::new(action, CostModel::FREE),
            MemTable::new(object, CostModel::FREE),
            pq,
        )
    }

    fn oracle(tables: &QueryTables<'_>, pq: &SequenceSet, k: usize) -> Vec<(ClipInterval, f64)> {
        // Direct scoring of every sequence (the Pq-Traverse semantics).
        let scoring = PaperScoring;
        let mut all: Vec<(ClipInterval, f64)> = pq
            .intervals()
            .iter()
            .map(|&iv| {
                let s = iv
                    .clips()
                    .map(|c| tables.clip_score(c, &scoring))
                    .sum::<f64>();
                (iv, s)
            })
            .collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn rvaq_matches_direct_topk() {
        let (a, o, pq) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        for k in 1..=4 {
            let want = oracle(&tables, &pq, k);
            let got = rvaq(&tables, &pq, &PaperScoring, &RvaqOptions::new(k));
            assert_eq!(got.sequences.len(), k);
            for (g, w) in got.sequences.iter().zip(&want) {
                assert_eq!(g.0, w.0, "k={k}");
                assert!((g.1 - w.1).abs() < 1e-9, "k={k}: {} vs {}", g.1, w.1);
            }
        }
    }

    #[test]
    fn noskip_matches_topk_but_needs_more_random_accesses() {
        // The regime where §4.3's skip mechanism pays off: two long,
        // nearly-tied contenders whose separation requires deep enumeration,
        // plus many weak sequences that are decided out early. During the
        // long head-to-head, RVAQ's bottom scan passes the decided-out
        // sequences' clips *without scoring them*; RVAQ-noSkip keeps paying
        // random accesses for them. Random accesses are the quantity the
        // paper's Tables 6–7 compare.
        let mut action = Vec::new();
        let mut object = Vec::new();
        let mut intervals = Vec::new();
        let mut next_clip = 0u64;
        let mut add_seq = |len: u64, base: f64, step: f64| {
            let start = next_clip;
            for i in 0..len {
                action.push(ScoreRow {
                    clip: ClipId::new(next_clip),
                    score: base + i as f64 * step,
                });
                // Correlated with the action score at sequence granularity
                // (as co-occurring predicates are), but flat within a
                // sequence: the two tables enumerate a sequence's clips in
                // different orders, so delivering a clip requires completing
                // its score with a random access into the other table.
                object.push(ScoreRow {
                    clip: ClipId::new(next_clip),
                    score: base * 0.01,
                });
                next_clip += 1;
            }
            intervals.push(ClipInterval::new(start, next_clip - 1));
            next_clip += 1; // gap clip so adjacent sequences do not merge
        };
        add_seq(100, 150.0, 0.010); // contender A (winner)
        add_seq(100, 149.5, 0.009); // contender B (runner-up)
        for l in 0..18u64 {
            add_seq(10, 1.0 + l as f64 * 3.0, 0.05); // weak losers
        }
        let pq = SequenceSet::from_intervals(intervals);
        let a = MemTable::new(action, CostModel::FREE);
        let o = MemTable::new(object, CostModel::FREE);
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let opts_skip = RvaqOptions {
            k: 1,
            skip_enabled: true,
            exact_scores: false,
        };
        let opts_noskip = RvaqOptions {
            skip_enabled: false,
            ..opts_skip
        };
        let skip = rvaq(&tables, &pq, &PaperScoring, &opts_skip);
        let noskip = rvaq(&tables, &pq, &PaperScoring, &opts_noskip);
        assert_eq!(skip.sequences[0].0, noskip.sequences[0].0);
        assert_eq!(skip.sequences[0].0, ClipInterval::new(0, 99));
        assert!(
            skip.stats.random < noskip.stats.random,
            "skip {} vs noskip {} random accesses",
            skip.stats.random,
            noskip.stats.random
        );
    }

    #[test]
    fn early_termination_reads_less_than_everything() {
        let (a, o, pq) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let got = rvaq(
            &tables,
            &pq,
            &PaperScoring,
            &RvaqOptions {
                k: 1,
                skip_enabled: true,
                exact_scores: false,
            },
        );
        // 40 clips × 2 tables = 80 would be exhaustive random access.
        assert!(
            got.stats.random < 80,
            "random accesses {} not pruned",
            got.stats.random
        );
        assert_eq!(got.sequences[0].0, ClipInterval::new(30, 34));
    }

    #[test]
    fn k_at_least_num_sequences_returns_all() {
        let (a, o, pq) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let got = rvaq(&tables, &pq, &PaperScoring, &RvaqOptions::new(10));
        assert_eq!(got.sequences.len(), 4);
        let want = oracle(&tables, &pq, 4);
        for (g, w) in got.sequences.iter().zip(&want) {
            assert_eq!(g.0, w.0);
            assert!((g.1 - w.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_candidates_yield_empty_result() {
        let (a, o, _) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let got = rvaq(
            &tables,
            &SequenceSet::empty(),
            &PaperScoring,
            &RvaqOptions::new(3),
        );
        assert!(got.sequences.is_empty());
        assert_eq!(got.stats.random, 0);
    }

    #[test]
    fn bound_scores_without_exact_are_lower_bounds() {
        let (a, o, pq) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let bound = rvaq(
            &tables,
            &pq,
            &PaperScoring,
            &RvaqOptions {
                k: 2,
                skip_enabled: true,
                exact_scores: false,
            },
        );
        let exact = rvaq(&tables, &pq, &PaperScoring, &RvaqOptions::new(2));
        for ((iv_b, s_b), (iv_e, s_e)) in bound.sequences.iter().zip(&exact.sequences) {
            assert_eq!(iv_b, iv_e);
            assert!(*s_b <= *s_e + 1e-9, "bound {s_b} exceeds exact {s_e}");
        }
    }

    #[test]
    fn works_on_file_tables_too() {
        let (a, o, pq) = setup();
        let dir = std::env::temp_dir().join(format!("vaq-rvaq-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        use vaq_storage::FileTableWriter;
        FileTableWriter::write(&dir.join("a"), a.rows_unaccounted().to_vec()).unwrap();
        FileTableWriter::write(&dir.join("o"), o.rows_unaccounted().to_vec()).unwrap();
        let fa = vaq_storage::FileTable::open(&dir.join("a"), CostModel::DEFAULT).unwrap();
        let fo = vaq_storage::FileTable::open(&dir.join("o"), CostModel::DEFAULT).unwrap();
        let mem_tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let file_tables = QueryTables {
            action: &fa,
            objects: vec![&fo],
        };
        let want = rvaq(&mem_tables, &pq, &PaperScoring, &RvaqOptions::new(2));
        let got = rvaq(&file_tables, &pq, &PaperScoring, &RvaqOptions::new(2));
        assert_eq!(got.sequences.len(), want.sequences.len());
        for (g, w) in got.sequences.iter().zip(&want.sequences) {
            assert_eq!(g.0, w.0);
            assert!((g.1 - w.1).abs() < 1e-9);
        }
        assert!(got.stats.simulated_ns > 0, "file tables charge I/O time");
        let _ = fa.len();
    }
}
