//! The TBClip top/bottom iterator — paper Algorithm 5.
//!
//! Each invocation delivers the next *top* clip (highest `S_q(c)` among
//! candidates not yet processed) and the next *bottom* clip (lowest score),
//! by:
//!
//! 1. sorted access in parallel over all queried tables from a shared row
//!    stamp until at least one *new* clip has been seen in **all** tables
//!    (Fagin-style completeness guarantee for monotone `g`);
//! 2. random accesses to complete the scores of newly seen clips (skipped
//!    clips are never scored — "imposing no random access overhead");
//! 3–4. the mirror-image steps from the bottom via reverse access.
//!
//! The caller supplies a skip predicate realizing the paper's `C_skip`: it
//! starts as "everything outside `P_q`" and grows as RVAQ decides sequences
//! conclusively in or out.

use crate::offline::scoring::ScoringModel;
use std::collections::{BTreeMap, BTreeSet};
use vaq_storage::{AccessStats, ClipScoreTable, ScoreRow};
use vaq_types::ClipId;

/// The clip score tables a query touches: the action's plus one per object
/// predicate (query order).
pub struct QueryTables<'t> {
    /// `table_a`.
    pub action: &'t dyn ClipScoreTable,
    /// `table_{o_1}` … `table_{o_I}`.
    pub objects: Vec<&'t dyn ClipScoreTable>,
}

impl<'t> QueryTables<'t> {
    /// Number of tables (`I + 1`).
    pub fn num_tables(&self) -> usize {
        1 + self.objects.len()
    }

    /// Longest table length (bounds the shared row stamp).
    pub fn max_len(&self) -> usize {
        self.objects
            .iter()
            .map(|t| t.len())
            .chain(std::iter::once(self.action.len()))
            .max()
            .unwrap_or(0)
    }

    /// Table by index: 0 is the action table, then objects in order.
    fn table(&self, i: usize) -> &'t dyn ClipScoreTable {
        if i == 0 {
            self.action
        } else {
            self.objects[i - 1]
        }
    }

    /// `S_q(c)` via one random access per table; absent rows contribute 0.
    pub fn clip_score(&self, clip: ClipId, scoring: &dyn ScoringModel) -> f64 {
        let a = self.action.random_access(clip).unwrap_or(0.0);
        let os: Vec<f64> = self
            .objects
            .iter()
            .map(|t| t.random_access(clip).unwrap_or(0.0))
            .collect();
        scoring.g(a, &os)
    }

    /// Merged access statistics over all tables.
    pub fn stats(&self) -> AccessStats {
        let mut s = self.action.stats();
        for t in &self.objects {
            s = s.merge(&t.stats());
        }
        s
    }

    /// Resets all tables' counters.
    pub fn reset_stats(&self) {
        self.action.reset_stats();
        for t in &self.objects {
            t.reset_stats();
        }
    }
}

/// One iterator step: the next top and bottom clips (either side may be
/// exhausted independently).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TbStep {
    /// Highest-scoring unprocessed candidate, with its exact `S_q(c)`.
    pub top: Option<ScoreRow>,
    /// Lowest-scoring unprocessed candidate.
    pub btm: Option<ScoreRow>,
}

/// Iterator state (see module docs).
pub struct TbClip<'t, 'q> {
    tables: &'q QueryTables<'t>,
    scoring: &'q dyn ScoringModel,
    stamp_top: usize,
    stamp_btm: usize,
    /// Per-table scores already revealed by sorted/reverse access (the
    /// top-k access model yields `(cid, score)` pairs, so completing a
    /// clip's score only needs random accesses into the tables that have
    /// *not* shown it yet). Ordered maps/sets throughout: delivery ties are
    /// broken by clip id, so iteration order can never leak hash-layout
    /// nondeterminism into results (the `determinism` taint pass enforces
    /// this).
    partial: BTreeMap<ClipId, Vec<Option<f64>>>,
    /// Distinct tables that have seen each clip via sorted access.
    seen_top: BTreeMap<ClipId, usize>,
    seen_btm: BTreeMap<ClipId, usize>,
    /// Clips seen (in any table) but not yet scored.
    unscored_top: Vec<ClipId>,
    unscored_btm: Vec<ClipId>,
    /// Scored candidates awaiting delivery.
    pending_top: BTreeSet<ClipId>,
    pending_btm: BTreeSet<ClipId>,
    /// Exact scores of every clip scored so far (shared across sides).
    score_cache: BTreeMap<ClipId, f64>,
    processed_top: BTreeSet<ClipId>,
    processed_btm: BTreeSet<ClipId>,
    /// Set when a batch of sorted accesses has produced a fresh common clip.
    fresh_common_top: usize,
    fresh_common_btm: usize,
}

impl<'t, 'q> TbClip<'t, 'q> {
    /// Creates the iterator over the query's tables.
    pub fn new(tables: &'q QueryTables<'t>, scoring: &'q dyn ScoringModel) -> Self {
        Self {
            tables,
            scoring,
            stamp_top: 0,
            stamp_btm: 0,
            partial: BTreeMap::new(),
            seen_top: BTreeMap::new(),
            seen_btm: BTreeMap::new(),
            unscored_top: Vec::new(),
            unscored_btm: Vec::new(),
            pending_top: BTreeSet::new(),
            pending_btm: BTreeSet::new(),
            score_cache: BTreeMap::new(),
            processed_top: BTreeSet::new(),
            processed_btm: BTreeSet::new(),
            fresh_common_top: 0,
            fresh_common_btm: 0,
        }
    }

    /// The exact score of `clip`, from cache if available, otherwise by
    /// completing the per-table scores: tables that already revealed the
    /// clip through sorted/reverse access contribute their cached row
    /// score; only the remaining tables cost a random access each (used by
    /// both delivery scoring and RVAQ's exact-score finalization).
    pub fn clip_score_cached(&mut self, clip: ClipId) -> f64 {
        if let Some(&s) = self.score_cache.get(&clip) {
            return s;
        }
        let num_tables = self.tables.num_tables();
        let partial = self
            .partial
            .entry(clip)
            .or_insert_with(|| vec![None; num_tables]);
        let mut scores = Vec::with_capacity(num_tables);
        for (ti, slot) in partial.iter_mut().enumerate() {
            let v = match slot {
                Some(v) => *v,
                None => self.tables.table(ti).random_access(clip).unwrap_or(0.0),
            };
            scores.push(v);
        }
        let s = self.scoring.g(scores[0], &scores[1..]);
        self.score_cache.insert(clip, s);
        s
    }

    /// Advances both sides and returns the next top/bottom clips. `skip`
    /// realizes `C_skip`; skipped clips are neither scored nor returned.
    pub fn next(&mut self, skip: &dyn Fn(ClipId) -> bool) -> TbStep {
        let top = self.advance_side(skip, true);
        let btm = self.advance_side(skip, false);
        TbStep { top, btm }
    }

    fn advance_side(&mut self, skip: &dyn Fn(ClipId) -> bool, is_top: bool) -> Option<ScoreRow> {
        let num_tables = self.tables.num_tables();
        let max_len = self.tables.max_len();

        // Step 1: sorted (or reverse) access in parallel until a fresh
        // common clip appears or the tables are exhausted.
        loop {
            let (stamp, fresh) = if is_top {
                (&mut self.stamp_top, &mut self.fresh_common_top)
            } else {
                (&mut self.stamp_btm, &mut self.fresh_common_btm)
            };
            if *fresh > 0 || *stamp >= max_len {
                break;
            }
            let row_idx = *stamp;
            *stamp += 1;
            for ti in 0..num_tables {
                let table = self.tables.table(ti);
                let row = if is_top {
                    table.sorted_access(row_idx)
                } else {
                    table.reverse_access(row_idx)
                };
                let Some(row) = row else { continue };
                self.partial
                    .entry(row.clip)
                    .or_insert_with(|| vec![None; num_tables])[ti] = Some(row.score);
                let (seen, unscored, processed, fresh) = if is_top {
                    (
                        &mut self.seen_top,
                        &mut self.unscored_top,
                        &self.processed_top,
                        &mut self.fresh_common_top,
                    )
                } else {
                    (
                        &mut self.seen_btm,
                        &mut self.unscored_btm,
                        &self.processed_btm,
                        &mut self.fresh_common_btm,
                    )
                };
                let count = seen.entry(row.clip).or_insert(0);
                if *count == 0 {
                    unscored.push(row.clip);
                }
                *count += 1;
                if *count == num_tables && !processed.contains(&row.clip) && !skip(row.clip) {
                    *fresh += 1;
                }
            }
        }

        // Step 2: random accesses for every seen-but-unscored clip.
        let unscored = if is_top {
            std::mem::take(&mut self.unscored_top)
        } else {
            std::mem::take(&mut self.unscored_btm)
        };
        for clip in unscored {
            if skip(clip) {
                continue; // never scored: no random-access overhead
            }
            self.clip_score_cached(clip);
            if is_top {
                if !self.processed_top.contains(&clip) {
                    self.pending_top.insert(clip);
                }
            } else if !self.processed_btm.contains(&clip) {
                self.pending_btm.insert(clip);
            }
        }

        // Deliver the best pending candidate, purging skipped ones.
        let (pending, processed, fresh) = if is_top {
            (
                &mut self.pending_top,
                &mut self.processed_top,
                &mut self.fresh_common_top,
            )
        } else {
            (
                &mut self.pending_btm,
                &mut self.processed_btm,
                &mut self.fresh_common_btm,
            )
        };
        pending.retain(|&c| !skip(c));
        let chosen = pending
            .iter()
            .map(|&c| (c, self.score_cache[&c]))
            .reduce(|best, cand| {
                let better = if is_top {
                    cand.1 > best.1
                } else {
                    cand.1 < best.1
                };
                if better {
                    cand
                } else {
                    best
                }
            });
        let (clip, score) = chosen?;
        pending.remove(&clip);
        processed.insert(clip);
        *fresh = fresh.saturating_sub(1);
        Some(ScoreRow { clip, score })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::scoring::PaperScoring;
    use vaq_storage::{CostModel, MemTable};

    fn table(rows: &[(u64, f64)]) -> MemTable {
        MemTable::new(
            rows.iter()
                .map(|&(c, s)| ScoreRow {
                    clip: ClipId::new(c),
                    score: s,
                })
                .collect(),
            CostModel::FREE,
        )
    }

    /// Two tables over clips 0..5; g = action * sum(objects).
    fn setup() -> (MemTable, MemTable) {
        let action = table(&[(0, 1.0), (1, 5.0), (2, 3.0), (3, 2.0), (4, 4.0)]);
        let object = table(&[(0, 2.0), (1, 1.0), (2, 2.0), (3, 3.0), (4, 1.0)]);
        (action, object)
    }

    // g-scores: c0=2, c1=5, c2=6, c3=6, c4=4.

    #[test]
    fn tops_descend_bottoms_ascend() {
        let (a, o) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let scoring = PaperScoring;
        let mut tb = TbClip::new(&tables, &scoring);
        let no_skip = |_c: ClipId| false;
        let mut tops = Vec::new();
        let mut btms = Vec::new();
        loop {
            let step = tb.next(&no_skip);
            if step.top.is_none() && step.btm.is_none() {
                break;
            }
            if let Some(t) = step.top {
                tops.push(t.score);
            }
            if let Some(b) = step.btm {
                btms.push(b.score);
            }
        }
        assert_eq!(tops.len(), 5);
        assert_eq!(btms.len(), 5);
        assert!(tops.windows(2).all(|w| w[0] >= w[1]), "tops {tops:?}");
        assert!(btms.windows(2).all(|w| w[0] <= w[1]), "btms {btms:?}");
        assert_eq!(tops[0], 6.0);
        assert_eq!(btms[0], 2.0);
    }

    #[test]
    fn each_side_processes_each_clip_once() {
        let (a, o) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let scoring = PaperScoring;
        let mut tb = TbClip::new(&tables, &scoring);
        let no_skip = |_c: ClipId| false;
        let mut top_clips = Vec::new();
        for _ in 0..10 {
            let step = tb.next(&no_skip);
            if let Some(t) = step.top {
                top_clips.push(t.clip);
            }
        }
        let mut dedup = top_clips.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), top_clips.len(), "duplicates in {top_clips:?}");
        assert_eq!(top_clips.len(), 5);
    }

    #[test]
    fn skipped_clips_are_never_scored_or_returned() {
        let (a, o) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let scoring = PaperScoring;
        let mut tb = TbClip::new(&tables, &scoring);
        // Skip clips 2 and 3 (the two best).
        let skip = |c: ClipId| c.raw() == 2 || c.raw() == 3;
        let step = tb.next(&skip);
        assert_eq!(step.top.unwrap().score, 5.0, "c1 is best non-skipped");
        let random_before = tables.stats().random;
        // Scoring skipped clips would have cost 2 tables × 2 clips = 4 more.
        assert_eq!(random_before % 2, 0);
        let mut clips_seen = vec![step.top.unwrap().clip];
        loop {
            let step = tb.next(&skip);
            match step.top {
                Some(t) => clips_seen.push(t.clip),
                None => break,
            }
        }
        assert!(clips_seen.iter().all(|c| c.raw() != 2 && c.raw() != 3));
    }

    #[test]
    fn missing_rows_contribute_zero() {
        let action = table(&[(0, 1.0), (1, 2.0)]);
        let object = table(&[(1, 3.0)]); // clip 0 missing
        let tables = QueryTables {
            action: &action,
            objects: vec![&object],
        };
        let scoring = PaperScoring;
        assert_eq!(tables.clip_score(ClipId::new(0), &scoring), 0.0);
        assert_eq!(tables.clip_score(ClipId::new(1), &scoring), 6.0);
    }

    #[test]
    fn random_access_counts_are_bounded_by_union() {
        let (a, o) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        tables.reset_stats();
        let scoring = PaperScoring;
        let mut tb = TbClip::new(&tables, &scoring);
        let no_skip = |_c: ClipId| false;
        let _ = tb.next(&no_skip);
        let stats = tables.stats();
        // At most 5 clips × 2 tables random accesses in total, ever.
        assert!(stats.random <= 10, "random={}", stats.random);
        assert!(stats.sorted >= 2, "sorted accesses happened");
    }

    #[test]
    fn score_cache_avoids_duplicate_random_accesses() {
        let (a, o) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        tables.reset_stats();
        let scoring = PaperScoring;
        let mut tb = TbClip::new(&tables, &scoring);
        let no_skip = |_c: ClipId| false;
        while tb.next(&no_skip).top.is_some() {}
        let after_drain = tables.stats().random;
        // Finalization reads must hit the cache.
        let _ = tb.clip_score_cached(ClipId::new(2));
        assert_eq!(tables.stats().random, after_drain);
    }

    #[test]
    fn exhausted_iterator_returns_none() {
        let (a, o) = setup();
        let tables = QueryTables {
            action: &a,
            objects: vec![&o],
        };
        let scoring = PaperScoring;
        let mut tb = TbClip::new(&tables, &scoring);
        let no_skip = |_c: ClipId| false;
        for _ in 0..5 {
            assert!(tb.next(&no_skip).top.is_some());
        }
        let step = tb.next(&no_skip);
        assert_eq!(step.top, None);
        assert_eq!(step.btm, None);
    }
}
