//! # vaq-core
//!
//! The paper's primary contribution: query processing for actions and
//! objects over videos.
//!
//! * [`online`] — the streaming case (§3). [`online::OnlineEngine`]
//!   implements both **SVAQ** (Algorithm 1: static background probabilities
//!   fixed a priori) and **SVAQD** (Algorithm 3: background probabilities
//!   re-estimated by the exponential-kernel smoother, critical values
//!   recomputed as the stream drifts), differing only in their
//!   [`config::ParameterPolicy`]. Clip evaluation follows Algorithm 2,
//!   including its short-circuit predicate order. [`online::service`]
//!   runs many standing queries for many tenants behind admission
//!   control and a backpressured, deterministically-shedding queue.
//! * [`offline`] — the repository case (§4). [`offline::ingest`] is the
//!   one-time ingestion phase (clip score tables + individual sequences per
//!   type, §4.2); [`offline::rvaq`] is the RVAQ bound-refinement top-K
//!   algorithm (Algorithm 4) over the [`offline::tbclip`] top/bottom
//!   iterator (Algorithm 5); [`offline::baselines`] holds the three
//!   comparison algorithms of §5.1 (FA, RVAQ-noSkip, Pq-Traverse);
//!   [`offline::scoring`] is the monotone scoring-function framework of
//!   §4.1 with the paper's sample instantiation.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_docs)]

pub mod config;
pub mod offline;
pub mod online;

pub use config::{DegradationPolicy, OnlineConfig, ParameterPolicy, RetryPolicy, UpdatePolicy};
pub use offline::ingest::{
    ingest, ingest_parallel, ingest_parallel_traced, ingest_traced, IngestOutput,
};
pub use offline::repository::{query_repository, RepoResult, Repository};
pub use offline::rvaq::{rvaq, rvaq_traced, RvaqOptions, TopKResult};
pub use offline::scoring::{PaperScoring, ScoringModel};
pub use online::engine::{
    EngineCheckpoint, GapMarker, OnlineEngine, OnlineResult, SharedScanCaches,
};
pub use online::indicator::{EvalScratch, GapReason};
pub use online::multi::{
    run_multi_query, run_multi_query_traced, MultiQueryOptions, MultiQueryOutput,
};
pub use online::service::{
    checkpoint_service_at, resume_service, run_service, OverloadPolicy, QueryId, QuerySpec,
    RejectReason, ServiceCheckpoint, ServiceConfig, ServiceEvent, ServiceHost, ServiceLimits,
    ServiceReport, ShedCause, ShedEvent, StandingQueryService, TenantId, TenantQuota,
};
