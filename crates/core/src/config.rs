//! Engine configuration.

use vaq_types::{Result, VaqError};

/// How background probabilities behave over the stream — the single switch
/// between the paper's SVAQ and SVAQD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParameterPolicy {
    /// SVAQ: the initial background probabilities are used for the entire
    /// stream; critical values are computed once.
    Static,
    /// SVAQD: background probabilities are re-estimated with the
    /// exponential-kernel smoother (bandwidth in *clips*; converted to the
    /// right occurrence unit per predicate) and critical values recomputed.
    Dynamic {
        /// Kernel bandwidth `u`, measured in clips of history.
        bandwidth_clips: f64,
        /// When to refresh estimates and critical values.
        update: UpdatePolicy,
    },
}

/// When SVAQD refreshes its estimates (paper §3.3: "every time a new event
/// occurs, or after processing a fixed number of clips"; Algorithm 3 line 7
/// shows the positive-clip variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Refresh after every clip (default; most adaptive).
    EveryClip,
    /// Refresh only after clips whose query indicator was positive — the
    /// literal reading of Algorithm 3.
    PositiveClips,
    /// Refresh every `n` clips.
    EveryNClips(u32),
}

/// Configuration of the online engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Object-detector score threshold `T_obj` (paper §2).
    pub t_obj: f64,
    /// Action-recognizer score threshold `T_act`.
    pub t_act: f64,
    /// Significance level `α` of the scan-statistics test (Eq. 5).
    pub alpha: f64,
    /// Reference horizon for the scan statistic, in clips (`N` = horizon ×
    /// OUs per clip for each predicate kind).
    pub horizon_clips: u64,
    /// Initial background probability for every object predicate
    /// (`p_obj₀`).
    pub p0_obj: f64,
    /// Initial background probability for the action predicate (`p_act₀`).
    pub p0_act: f64,
    /// SVAQ vs SVAQD.
    pub policy: ParameterPolicy,
}

impl OnlineConfig {
    /// SVAQ with the paper's defaults: thresholds 0.5, α = 0.05, a
    /// 200-clip horizon, and `p₀ = 10⁻⁴` (the value §5.2 fixes after the
    /// Figure-2 sensitivity sweep).
    pub fn svaq() -> Self {
        Self {
            t_obj: 0.5,
            t_act: 0.5,
            alpha: 0.05,
            horizon_clips: 200,
            p0_obj: 1e-4,
            p0_act: 1e-4,
            policy: ParameterPolicy::Static,
        }
    }

    /// SVAQD with the paper's defaults and a 60-clip kernel bandwidth.
    pub fn svaqd() -> Self {
        Self {
            policy: ParameterPolicy::Dynamic {
                bandwidth_clips: 60.0,
                update: UpdatePolicy::EveryClip,
            },
            ..Self::svaq()
        }
    }

    /// Overrides both initial background probabilities.
    pub fn with_p0(mut self, p0: f64) -> Self {
        self.p0_obj = p0;
        self.p0_act = p0;
        self
    }

    /// Validates field domains.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [("t_obj", self.t_obj), ("t_act", self.t_act)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(VaqError::InvalidConfig(format!("{name}={v} outside [0,1]")));
            }
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(VaqError::InvalidConfig(format!(
                "alpha={} outside (0,1)",
                self.alpha
            )));
        }
        if self.horizon_clips < 2 {
            return Err(VaqError::InvalidConfig(
                "horizon must span at least 2 clips".into(),
            ));
        }
        for (name, v) in [("p0_obj", self.p0_obj), ("p0_act", self.p0_act)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(VaqError::InvalidConfig(format!("{name}={v} outside [0,1]")));
            }
        }
        if let ParameterPolicy::Dynamic {
            bandwidth_clips, ..
        } = self.policy
        {
            if !(bandwidth_clips.is_finite() && bandwidth_clips > 0.0) {
                return Err(VaqError::InvalidConfig(format!(
                    "kernel bandwidth {bandwidth_clips} must be positive"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        OnlineConfig::svaq().validate().unwrap();
        OnlineConfig::svaqd().validate().unwrap();
    }

    #[test]
    fn svaqd_differs_only_in_policy() {
        let a = OnlineConfig::svaq();
        let b = OnlineConfig::svaqd();
        assert_eq!(a.policy, ParameterPolicy::Static);
        assert!(matches!(b.policy, ParameterPolicy::Dynamic { .. }));
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.p0_obj, b.p0_obj);
    }

    #[test]
    fn with_p0_sets_both() {
        let c = OnlineConfig::svaq().with_p0(0.01);
        assert_eq!(c.p0_obj, 0.01);
        assert_eq!(c.p0_act, 0.01);
    }

    #[test]
    fn invalid_fields_rejected() {
        assert!(OnlineConfig { t_obj: 1.5, ..OnlineConfig::svaq() }.validate().is_err());
        assert!(OnlineConfig { alpha: 0.0, ..OnlineConfig::svaq() }.validate().is_err());
        assert!(OnlineConfig { horizon_clips: 1, ..OnlineConfig::svaq() }.validate().is_err());
        assert!(OnlineConfig { p0_act: -0.2, ..OnlineConfig::svaq() }.validate().is_err());
        let bad = OnlineConfig {
            policy: ParameterPolicy::Dynamic {
                bandwidth_clips: 0.0,
                update: UpdatePolicy::EveryClip,
            },
            ..OnlineConfig::svaq()
        };
        assert!(bad.validate().is_err());
    }
}
