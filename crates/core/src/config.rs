//! Engine configuration.

use vaq_types::{Result, VaqError};

/// How background probabilities behave over the stream — the single switch
/// between the paper's SVAQ and SVAQD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParameterPolicy {
    /// SVAQ: the initial background probabilities are used for the entire
    /// stream; critical values are computed once.
    Static,
    /// SVAQD: background probabilities are re-estimated with the
    /// exponential-kernel smoother (bandwidth in *clips*; converted to the
    /// right occurrence unit per predicate) and critical values recomputed.
    Dynamic {
        /// Kernel bandwidth `u`, measured in clips of history.
        bandwidth_clips: f64,
        /// When to refresh estimates and critical values.
        update: UpdatePolicy,
    },
}

/// When SVAQD refreshes its estimates (paper §3.3: "every time a new event
/// occurs, or after processing a fixed number of clips"; Algorithm 3 line 7
/// shows the positive-clip variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Refresh after every clip (default; most adaptive).
    EveryClip,
    /// Refresh only after clips whose query indicator was positive — the
    /// literal reading of Algorithm 3.
    PositiveClips,
    /// Refresh every `n` clips.
    EveryNClips(u32),
}

/// What the engine does with a clip whose model outputs stay unavailable
/// after bounded retries (detector outage, dropped frames, exhausted
/// transient errors).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Fail the stream with [`vaq_types::VaqError::DetectorUnavailable`].
    /// The strict choice: never answer from partial data.
    Abort,
    /// Skip the clip entirely and emit a typed gap marker in the result;
    /// the clip contributes nothing to sequences or background estimates.
    SkipClip,
    /// Impute missing occurrence units as background (they carry no event)
    /// and test the predicate on the *observed* sub-window with an
    /// edge-corrected critical value `max(1, ⌈k·observed/total⌉)` — the
    /// scan window shrank, so the event-count bar shrinks proportionally.
    /// Clips with zero observed units still degrade to a gap marker. The
    /// default: keeps answering through partial outages without silently
    /// treating missing data as evidence of absence at full window size.
    #[default]
    ImputeBackground,
}

/// Bounded retry with exponential backoff for faulted model invocations.
///
/// Attempt `i` (zero-based) waits `base_backoff_ms · 2^i` before retrying;
/// the waits are deposited into
/// [`vaq_detect::InferenceStats::backoff_ms`] so the runtime-decomposition
/// accounting stays honest about time lost to faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry, ms; doubles per further retry.
    pub base_backoff_ms: f64,
}

impl RetryPolicy {
    /// Two retries starting at 50 ms — absorbs isolated transient errors
    /// without stalling long on a real outage.
    pub const DEFAULT: Self = Self {
        max_retries: 2,
        base_backoff_ms: 50.0,
    };

    /// No retries at all.
    pub const NONE: Self = Self {
        max_retries: 0,
        base_backoff_ms: 0.0,
    };

    /// Simulated backoff wait before retry `attempt` (zero-based), ms.
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        self.base_backoff_ms * f64::from(1u32 << attempt.min(16))
    }

    /// Validates field domains.
    pub fn validate(&self) -> Result<()> {
        if !(self.base_backoff_ms.is_finite() && self.base_backoff_ms >= 0.0) {
            return Err(VaqError::InvalidConfig(format!(
                "retry backoff {} must be non-negative and finite",
                self.base_backoff_ms
            )));
        }
        if self.max_retries > 16 {
            return Err(VaqError::InvalidConfig(format!(
                "max_retries {} unreasonably large (cap 16)",
                self.max_retries
            )));
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Configuration of the online engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Object-detector score threshold `T_obj` (paper §2).
    pub t_obj: f64,
    /// Action-recognizer score threshold `T_act`.
    pub t_act: f64,
    /// Significance level `α` of the scan-statistics test (Eq. 5).
    pub alpha: f64,
    /// Reference horizon for the scan statistic, in clips (`N` = horizon ×
    /// OUs per clip for each predicate kind).
    pub horizon_clips: u64,
    /// Initial background probability for every object predicate
    /// (`p_obj₀`).
    pub p0_obj: f64,
    /// Initial background probability for the action predicate (`p_act₀`).
    pub p0_act: f64,
    /// SVAQ vs SVAQD.
    pub policy: ParameterPolicy,
    /// What to do when model outputs stay unavailable after retries.
    pub degradation: DegradationPolicy,
    /// Bounded retry with backoff for faulted model invocations.
    pub retry: RetryPolicy,
}

impl OnlineConfig {
    /// SVAQ with the paper's defaults: thresholds 0.5, α = 0.05, a
    /// 200-clip horizon, and `p₀ = 10⁻⁴` (the value §5.2 fixes after the
    /// Figure-2 sensitivity sweep).
    pub fn svaq() -> Self {
        Self {
            t_obj: 0.5,
            t_act: 0.5,
            alpha: 0.05,
            horizon_clips: 200,
            p0_obj: 1e-4,
            p0_act: 1e-4,
            policy: ParameterPolicy::Static,
            degradation: DegradationPolicy::default(),
            retry: RetryPolicy::DEFAULT,
        }
    }

    /// SVAQD with the paper's defaults and a 60-clip kernel bandwidth.
    pub fn svaqd() -> Self {
        Self {
            policy: ParameterPolicy::Dynamic {
                bandwidth_clips: 60.0,
                update: UpdatePolicy::EveryClip,
            },
            ..Self::svaq()
        }
    }

    /// Overrides both initial background probabilities.
    pub fn with_p0(mut self, p0: f64) -> Self {
        self.p0_obj = p0;
        self.p0_act = p0;
        self
    }

    /// Overrides the degradation policy.
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = policy;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Validates field domains.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [("t_obj", self.t_obj), ("t_act", self.t_act)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(VaqError::InvalidConfig(format!("{name}={v} outside [0,1]")));
            }
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(VaqError::InvalidConfig(format!(
                "alpha={} outside (0,1)",
                self.alpha
            )));
        }
        if self.horizon_clips < 2 {
            return Err(VaqError::InvalidConfig(
                "horizon must span at least 2 clips".into(),
            ));
        }
        for (name, v) in [("p0_obj", self.p0_obj), ("p0_act", self.p0_act)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(VaqError::InvalidConfig(format!("{name}={v} outside [0,1]")));
            }
        }
        if let ParameterPolicy::Dynamic {
            bandwidth_clips, ..
        } = self.policy
        {
            if !(bandwidth_clips.is_finite() && bandwidth_clips > 0.0) {
                return Err(VaqError::InvalidConfig(format!(
                    "kernel bandwidth {bandwidth_clips} must be positive"
                )));
            }
        }
        self.retry.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        OnlineConfig::svaq().validate().unwrap();
        OnlineConfig::svaqd().validate().unwrap();
    }

    #[test]
    fn svaqd_differs_only_in_policy() {
        let a = OnlineConfig::svaq();
        let b = OnlineConfig::svaqd();
        assert_eq!(a.policy, ParameterPolicy::Static);
        assert!(matches!(b.policy, ParameterPolicy::Dynamic { .. }));
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.p0_obj, b.p0_obj);
    }

    #[test]
    fn with_p0_sets_both() {
        let c = OnlineConfig::svaq().with_p0(0.01);
        assert_eq!(c.p0_obj, 0.01);
        assert_eq!(c.p0_act, 0.01);
    }

    #[test]
    fn defaults_degrade_by_imputation() {
        let c = OnlineConfig::svaq();
        assert_eq!(c.degradation, DegradationPolicy::ImputeBackground);
        assert_eq!(c.retry, RetryPolicy::DEFAULT);
    }

    #[test]
    fn retry_backoff_doubles() {
        let r = RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10.0,
        };
        assert_eq!(r.backoff_ms(0), 10.0);
        assert_eq!(r.backoff_ms(1), 20.0);
        assert_eq!(r.backoff_ms(2), 40.0);
    }

    #[test]
    fn invalid_retry_rejected() {
        let bad = OnlineConfig {
            retry: RetryPolicy {
                max_retries: 1,
                base_backoff_ms: f64::NAN,
            },
            ..OnlineConfig::svaq()
        };
        assert!(bad.validate().is_err());
        let bad = OnlineConfig {
            retry: RetryPolicy {
                max_retries: 99,
                base_backoff_ms: 1.0,
            },
            ..OnlineConfig::svaq()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn invalid_fields_rejected() {
        assert!(OnlineConfig {
            t_obj: 1.5,
            ..OnlineConfig::svaq()
        }
        .validate()
        .is_err());
        assert!(OnlineConfig {
            alpha: 0.0,
            ..OnlineConfig::svaq()
        }
        .validate()
        .is_err());
        assert!(OnlineConfig {
            horizon_clips: 1,
            ..OnlineConfig::svaq()
        }
        .validate()
        .is_err());
        assert!(OnlineConfig {
            p0_act: -0.2,
            ..OnlineConfig::svaq()
        }
        .validate()
        .is_err());
        let bad = OnlineConfig {
            policy: ParameterPolicy::Dynamic {
                bandwidth_clips: 0.0,
                update: UpdatePolicy::EveryClip,
            },
            ..OnlineConfig::svaq()
        };
        assert!(bad.validate().is_err());
    }
}
