//! Schedule-aware replacements for `std::thread`.

use crate::sched::{self, Ctx, Wait};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Spawns a modeled thread (or a plain `std` thread outside a model).
///
/// Inside [`crate::model`], the spawn itself is a schedule point and the
/// child only runs when the scheduler picks it.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        Some(ctx) => {
            let id = ctx.sched.register();
            let sched_for_child = Arc::clone(&ctx.sched);
            let inner = std::thread::spawn(move || {
                sched::install(Some(Ctx {
                    sched: Arc::clone(&sched_for_child),
                    id,
                }));
                sched_for_child.wait_my_turn(id);
                let out = catch_unwind(AssertUnwindSafe(f));
                sched::install(None);
                match out {
                    Ok(v) => {
                        sched_for_child.finish(id, None);
                        Some(v)
                    }
                    Err(p) => {
                        sched_for_child.finish(id, Some(p));
                        None
                    }
                }
            });
            ctx.sched.switch(ctx.id, None, false);
            JoinHandle(Inner::Model {
                inner,
                id,
                sched: ctx.sched,
            })
        }
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
    }
}

/// A voluntary schedule point (no-op scheduling hint outside a model).
pub fn yield_now() {
    match sched::current() {
        Some(ctx) => ctx.sched.switch(ctx.id, None, false),
        None => std::thread::yield_now(),
    }
}

/// Handle to a spawned thread; join semantics mirror `std`.
pub struct JoinHandle<T>(Inner<T>);

enum Inner<T> {
    /// A plain `std` thread (spawned outside any model).
    Std(std::thread::JoinHandle<T>),
    /// A modeled thread: the carrier OS thread (closure result is `None`
    /// on panic), the modeled thread id, and the owning scheduler.
    Model {
        inner: std::thread::JoinHandle<Option<T>>,
        id: usize,
        sched: Arc<sched::Scheduler>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish; a panic on the thread is returned as
    /// `Err` with its payload, exactly like `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { inner, id, sched } => {
                if let Some(ctx) = sched::current() {
                    while !sched.is_finished(id) {
                        sched.switch(ctx.id, Some(Wait::Join(id)), false);
                    }
                }
                if let Some(p) = sched.take_panic(id) {
                    let _ = inner.join(); // reap the carrier thread
                    return Err(p);
                }
                match inner.join() {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => Err(Box::new("vaq-loom: thread panicked")),
                    Err(p) => Err(p),
                }
            }
        }
    }
}
