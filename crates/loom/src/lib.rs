//! # vaq-loom
//!
//! A dependency-free, loom-API-compatible model checker for the workspace's
//! concurrent code. [`model`] runs a closure under **every** distinct thread
//! interleaving (up to a preemption bound), with [`thread`] and [`sync`]
//! drop-in shims for the `std` primitives the closure uses.
//!
//! The workspace cannot assume the real [loom] crate is available (builds
//! must succeed from a cold, offline registry), so this crate reimplements
//! the slice of loom the vaq test-suite needs:
//!
//! * [`model`] — explore all schedules of a closure.
//! * [`thread::spawn`] / [`thread::JoinHandle`] / [`thread::yield_now`].
//! * [`sync::Mutex`], [`sync::RwLock`], [`sync::Condvar`] — schedule-aware
//!   locks; [`sync::Arc`] and [`sync::atomic`] re-export `std`.
//!
//! Consumer crates rename it (`loom = { package = "vaq-loom", … }`) and gate
//! a `sync` facade on `--cfg loom`, exactly as they would with the real
//! loom, so the model-checked code is byte-for-byte the production code.
//!
//! ## How exploration works
//!
//! One modeled thread runs at a time (a baton is passed between real OS
//! threads), and every lock acquire/release, condvar operation, spawn and
//! join is a *schedule point* where the scheduler picks which runnable
//! thread continues. The first execution runs each thread to completion
//! (switching only when the runner blocks); depth-first backtracking then
//! revisits the latest schedule point with an untried choice and replays
//! the prefix, enumerating every interleaving with at most
//! `LOOM_MAX_PREEMPTIONS` involuntary switches (default 2 — the CHESS
//! result: almost all concurrency bugs manifest within two preemptions).
//!
//! Determinism is required of the model closure: same choices ⇒ same
//! schedule points. The workspace's `nondeterminism` lint rule exists
//! precisely to keep wall-clocks and ambient RNG out of these paths.
//!
//! ## What is and is not modeled
//!
//! Lock/condvar interleavings and deadlocks are modeled; panics in modeled
//! threads are caught, the failing schedule is printed, and the panic is
//! re-raised from [`model`]. Weak memory is **not** modeled — atomics are
//! real `std` atomics, which under one-runnable-thread-at-a-time scheduling
//! behave sequentially consistently. That is the right fidelity for the
//! cache layer, whose shared state lives entirely behind locks.
//!
//! Outside a [`model`] call every shim falls back to plain `std` behavior,
//! so code linked against vaq-loom is unaffected until a model runs.
//!
//! [loom]: https://docs.rs/loom

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sched;
pub mod sync;
pub mod thread;

pub use sched::model;
