//! The schedule explorer: one runnable thread at a time, DFS over the
//! choice of which thread runs at each schedule point.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Involuntary context switches allowed per execution (see crate docs).
const DEFAULT_MAX_PREEMPTIONS: u32 = 2;
/// Hard cap on explored executions — a runaway-state-space backstop.
const MAX_EXECUTIONS: u64 = 200_000;

/// What a parked thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Wait {
    /// A mutex identified by its object id.
    Mutex(usize),
    /// A reader/writer lock identified by its object id.
    RwLock(usize),
    /// A condition variable identified by its object id.
    Condvar(usize),
    /// A specific thread's termination.
    Join(usize),
    /// Any thread's termination (the implicit end-of-model join).
    AnyFinish,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Blocked(Wait),
    Finished,
}

/// One recorded schedule decision: which thread was chosen, out of which
/// candidates (candidate order is the DFS branch order).
struct Decision {
    chosen: usize,
    candidates: Vec<usize>,
}

struct State {
    threads: Vec<ThreadState>,
    current: usize,
    replay: Vec<usize>,
    trace: Vec<Decision>,
    step: usize,
    preemptions: u32,
    max_preemptions: u32,
    aborted: bool,
    panics: Vec<(usize, Box<dyn Any + Send>)>,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// A modeled thread's handle to the active scheduler.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) id: usize,
}

/// The current thread's model context, if a model is running.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn install(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

fn abort_panic() -> ! {
    panic!("vaq-loom: model aborted (deadlock or failure on another thread)")
}

impl Scheduler {
    fn new(replay: Vec<usize>, max_preemptions: u32) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: vec![ThreadState::Runnable], // thread 0 = the model closure
                current: 0,
                replay,
                trace: Vec::new(),
                step: 0,
                preemptions: 0,
                max_preemptions,
                aborted: false,
                panics: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a newly spawned thread; it starts runnable but only runs
    /// once the scheduler picks it.
    pub(crate) fn register(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    pub(crate) fn is_finished(&self, id: usize) -> bool {
        matches!(self.lock().threads[id], ThreadState::Finished)
    }

    pub(crate) fn all_children_finished(&self) -> bool {
        self.lock()
            .threads
            .iter()
            .skip(1)
            .all(|s| matches!(s, ThreadState::Finished))
    }

    /// Marks `me` finished (recording a caught panic, if any) and hands the
    /// baton on.
    pub(crate) fn finish(&self, me: usize, panic: Option<Box<dyn Any + Send>>) {
        if let Some(p) = panic {
            self.lock().panics.push((me, p));
        }
        self.switch(me, None, true);
    }

    pub(crate) fn take_panic(&self, id: usize) -> Option<Box<dyn Any + Send>> {
        let mut st = self.lock();
        st.panics
            .iter()
            .position(|(i, _)| *i == id)
            .map(|idx| st.panics.remove(idx).1)
    }

    fn take_any_panic(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.lock();
        if st.panics.is_empty() {
            None
        } else {
            Some(st.panics.remove(0).1)
        }
    }

    /// Flips every parked thread whose wait matches `pred` back to
    /// runnable. Not itself a schedule point.
    pub(crate) fn unblock(&self, pred: impl Fn(Wait) -> bool) {
        let mut st = self.lock();
        unblock_locked(&mut st, pred);
    }

    /// The schedule point. `me` either stays runnable (pure yield), parks
    /// on `wait`, or — with `finished` — terminates. Picks the next thread
    /// per the replay prefix or the DFS default, then blocks until `me` is
    /// scheduled again (unless it finished).
    pub(crate) fn switch(&self, me: usize, wait: Option<Wait>, finished: bool) {
        let mut st = self.lock();
        if st.aborted {
            if finished {
                st.threads[me] = ThreadState::Finished;
            }
            self.cv.notify_all();
            drop(st);
            if finished || std::thread::panicking() {
                return;
            }
            abort_panic();
        }
        st.threads[me] = if finished {
            ThreadState::Finished
        } else if let Some(w) = wait {
            ThreadState::Blocked(w)
        } else {
            ThreadState::Runnable
        };
        if finished {
            unblock_locked(&mut st, |w| {
                matches!(w, Wait::Join(t) if t == me) || w == Wait::AnyFinish
            });
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ThreadState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st
                .threads
                .iter()
                .all(|s| matches!(s, ThreadState::Finished))
            {
                self.cv.notify_all();
                return; // execution complete
            }
            st.aborted = true;
            let states: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, s)| format!("  thread {i}: {s:?}"))
                .collect();
            self.cv.notify_all();
            drop(st);
            panic!(
                "vaq-loom: deadlock — no runnable thread\n{}",
                states.join("\n")
            );
        }
        let me_runnable = matches!(st.threads[me], ThreadState::Runnable);
        let mut candidates: Vec<usize> = Vec::new();
        if me_runnable {
            // Continuing the current thread is free; switching away while
            // it could continue costs a preemption.
            candidates.push(me);
            if st.preemptions < st.max_preemptions {
                candidates.extend(runnable.iter().copied().filter(|&t| t != me));
            }
        } else {
            candidates = runnable;
        }
        let chosen = if st.step < st.replay.len() {
            let c = st.replay[st.step];
            assert!(
                candidates.contains(&c),
                "vaq-loom: replay diverged at step {} (wanted thread {c}, \
                 candidates {candidates:?}) — the model closure must be \
                 deterministic",
                st.step
            );
            c
        } else {
            candidates[0]
        };
        if me_runnable && chosen != me {
            st.preemptions += 1;
        }
        st.trace.push(Decision { chosen, candidates });
        st.step += 1;
        st.current = chosen;
        self.cv.notify_all();
        drop(st);
        if !finished && chosen != me {
            self.wait_my_turn(me);
        }
    }

    /// Parks the calling OS thread until the scheduler hands it the baton.
    pub(crate) fn wait_my_turn(&self, me: usize) {
        let mut st = self.lock();
        while !st.aborted && !(st.current == me && matches!(st.threads[me], ThreadState::Runnable))
        {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let aborted = st.aborted;
        drop(st);
        if aborted && !std::thread::panicking() {
            abort_panic();
        }
    }

    fn abort(&self) {
        self.lock().aborted = true;
        self.cv.notify_all();
    }

    fn take_trace(&self) -> Vec<Decision> {
        std::mem::take(&mut self.lock().trace)
    }
}

fn unblock_locked(st: &mut State, pred: impl Fn(Wait) -> bool) {
    for s in st.threads.iter_mut() {
        if let ThreadState::Blocked(w) = *s {
            if pred(w) {
                *s = ThreadState::Runnable;
            }
        }
    }
}

/// Given the last execution's decisions, computes the replay prefix of the
/// next DFS branch, or `None` when the space is exhausted.
fn next_replay(trace: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let d = &trace[i];
        let pos = d
            .candidates
            .iter()
            .position(|&c| c == d.chosen)
            .unwrap_or(usize::MAX);
        if pos.saturating_add(1) < d.candidates.len() {
            let mut replay: Vec<usize> = trace[..i].iter().map(|d| d.chosen).collect();
            replay.push(d.candidates[pos + 1]);
            return Some(replay);
        }
    }
    None
}

fn report_failure(trace: &[Decision], execution: u64) {
    let schedule: Vec<usize> = trace.iter().map(|d| d.chosen).collect();
    eprintln!("vaq-loom: failure on execution {execution}, schedule {schedule:?}");
}

/// Runs `f` under every distinct interleaving (bounded by
/// `LOOM_MAX_PREEMPTIONS`, default 2). Panics — with the failing schedule
/// on stderr — if any execution panics on any thread, or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    assert!(current().is_none(), "vaq-loom: model() calls cannot nest");
    let max_preemptions = std::env::var("LOOM_MAX_PREEMPTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_PREEMPTIONS);
    let mut replay: Vec<usize> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "vaq-loom: exceeded {MAX_EXECUTIONS} executions — shrink the model"
        );
        let sched = Arc::new(Scheduler::new(replay.clone(), max_preemptions));
        install(Some(Ctx {
            sched: Arc::clone(&sched),
            id: 0,
        }));
        let result = catch_unwind(AssertUnwindSafe(|| {
            f();
            // Implicit join: drive every spawned thread to completion so
            // leaked handles still get fully explored.
            while !sched.all_children_finished() {
                sched.switch(0, Some(Wait::AnyFinish), false);
            }
        }));
        install(None);
        let trace = sched.take_trace();
        if let Err(payload) = result {
            sched.abort(); // release any still-parked children
            report_failure(&trace, executions);
            resume_unwind(payload);
        }
        if let Some(p) = sched.take_any_panic() {
            sched.abort();
            report_failure(&trace, executions);
            resume_unwind(p);
        }
        match next_replay(&trace) {
            Some(next) => replay = next,
            None => break,
        }
    }
}
