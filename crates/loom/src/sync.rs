//! Schedule-aware replacements for `std::sync` lock primitives.
//!
//! Each lock keeps its *logical* state (`held`, reader/writer counts) in
//! plain atomics that the single-runnable-thread discipline makes race-free,
//! and wraps a real `std` lock for the data itself — which is therefore
//! never contended: a thread only touches the `std` lock after the logical
//! state admitted it. Acquire and release are schedule points; a thread
//! that cannot acquire parks until a release flips it runnable again.
//!
//! [`Arc`] and [`atomic`] are re-exports of `std` (weak memory is out of
//! scope; see the crate docs).

use crate::sched::{self, Wait};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{LockResult, PoisonError};

pub use std::sync::atomic;
pub use std::sync::Arc;

static NEXT_OBJECT: AtomicUsize = AtomicUsize::new(0);

fn new_object_id() -> usize {
    NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
}

/// A mutual-exclusion lock whose acquire/release are schedule points.
pub struct Mutex<T: ?Sized> {
    id: usize,
    held: AtomicBool,
    std: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            id: new_object_id(),
            held: AtomicBool::new(false),
            std: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, parking the modeled thread while another holds it.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(ctx) = sched::current() {
            loop {
                ctx.sched.switch(ctx.id, None, false); // acquire point
                if !self.held.load(Ordering::Relaxed) {
                    self.held.store(true, Ordering::Relaxed);
                    break;
                }
                ctx.sched.switch(ctx.id, Some(Wait::Mutex(self.id)), false);
            }
        }
        match self.std.lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                lock: self,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                inner: Some(p.into_inner()),
                lock: self,
            })),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.std.fmt(f)
    }
}

/// RAII guard for [`Mutex`]; releasing is a schedule point.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard released")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            if let Some(ctx) = sched::current() {
                self.lock.held.store(false, Ordering::Relaxed);
                let id = self.lock.id;
                ctx.sched.unblock(|w| w == Wait::Mutex(id));
                if !std::thread::panicking() {
                    ctx.sched.switch(ctx.id, None, false); // release point
                }
            }
        }
    }
}

/// A condition variable compatible with [`Mutex`].
pub struct Condvar {
    id: usize,
    std: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            id: new_object_id(),
            std: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard`'s mutex and parks until notified, then
    /// re-acquires. There is no schedule point between the release and the
    /// park, so a model cannot lose a wakeup.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        match sched::current() {
            Some(ctx) => {
                drop(guard.inner.take()); // the Drop impl is now a no-op
                lock.held.store(false, Ordering::Relaxed);
                let mutex_id = lock.id;
                ctx.sched.unblock(|w| w == Wait::Mutex(mutex_id));
                ctx.sched
                    .switch(ctx.id, Some(Wait::Condvar(self.id)), false);
                drop(guard);
                lock.lock()
            }
            None => {
                let inner = guard.inner.take().expect("guard released");
                drop(guard);
                match self.std.wait(inner) {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        lock,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        lock,
                    })),
                }
            }
        }
    }

    /// Wakes one waiter. Under a model this conservatively wakes all —
    /// spurious wakeups are within the condvar contract, and exploring the
    /// over-approximation covers every real wake order.
    pub fn notify_one(&self) {
        match sched::current() {
            Some(_) => self.notify_all(),
            None => self.std.notify_one(),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match sched::current() {
            Some(ctx) => {
                let id = self.id;
                ctx.sched.unblock(|w| w == Wait::Condvar(id));
                ctx.sched.switch(ctx.id, None, false); // notify point
            }
            None => self.std.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader/writer lock whose acquire/release are schedule points.
pub struct RwLock<T: ?Sized> {
    id: usize,
    readers: AtomicUsize,
    writer: AtomicBool,
    std: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            id: new_object_id(),
            readers: AtomicUsize::new(0),
            writer: AtomicBool::new(false),
            std: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access; parks while a writer holds the lock.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some(ctx) = sched::current() {
            loop {
                ctx.sched.switch(ctx.id, None, false);
                if !self.writer.load(Ordering::Relaxed) {
                    self.readers.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                ctx.sched.switch(ctx.id, Some(Wait::RwLock(self.id)), false);
            }
        }
        match self.std.read() {
            Ok(g) => Ok(RwLockReadGuard {
                inner: Some(g),
                lock: self,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                inner: Some(p.into_inner()),
                lock: self,
            })),
        }
    }

    /// Acquires exclusive access; parks while readers or a writer hold it.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some(ctx) = sched::current() {
            loop {
                ctx.sched.switch(ctx.id, None, false);
                if !self.writer.load(Ordering::Relaxed) && self.readers.load(Ordering::Relaxed) == 0
                {
                    self.writer.store(true, Ordering::Relaxed);
                    break;
                }
                ctx.sched.switch(ctx.id, Some(Wait::RwLock(self.id)), false);
            }
        }
        match self.std.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                inner: Some(g),
                lock: self,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                inner: Some(p.into_inner()),
                lock: self,
            })),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.std.fmt(f)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard released")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            if let Some(ctx) = sched::current() {
                self.lock.readers.fetch_sub(1, Ordering::Relaxed);
                let id = self.lock.id;
                ctx.sched.unblock(|w| w == Wait::RwLock(id));
                if !std::thread::panicking() {
                    ctx.sched.switch(ctx.id, None, false);
                }
            }
        }
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard released")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard released")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            if let Some(ctx) = sched::current() {
                self.lock.writer.store(false, Ordering::Relaxed);
                let id = self.lock.id;
                ctx.sched.unblock(|w| w == Wait::RwLock(id));
                if !std::thread::panicking() {
                    ctx.sched.switch(ctx.id, None, false);
                }
            }
        }
    }
}
