//! Self-validation of the vaq-loom explorer. These tests run under plain
//! `cargo test` (no `--cfg loom` needed — the shims enter model mode
//! whenever `model()` is active), so tier-1 CI exercises the checker that
//! the `--cfg loom` suites in vaq-detect / vaq-scanstats rely on.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use vaq_loom::sync::{Arc, Condvar, Mutex, RwLock};
use vaq_loom::{model, thread};

/// The classic check-then-act race: lock, miss, unlock, compute, lock,
/// insert. Two threads can both observe the miss, so some interleaving
/// executes twice — the explorer must find it.
#[test]
fn explorer_finds_check_then_act_race() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let map = Arc::new(Mutex::new(HashMap::<u64, u64>::new()));
            let execs = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let map = Arc::clone(&map);
                let execs = Arc::clone(&execs);
                handles.push(thread::spawn(move || {
                    if let Some(&v) = map.lock().unwrap().get(&7) {
                        return v;
                    }
                    // Lock released: another thread can miss here too.
                    execs.fetch_add(1, Ordering::SeqCst);
                    map.lock().unwrap().insert(7, 42);
                    42
                }));
            }
            for h in handles {
                assert_eq!(h.join().unwrap(), 42);
            }
            assert_eq!(
                execs.load(Ordering::SeqCst),
                1,
                "duplicate execution — the race the explorer must expose"
            );
        });
    }));
    assert!(
        result.is_err(),
        "the explorer failed to find the check-then-act interleaving"
    );
}

/// The single-flight protocol (a miniature of the vaq-detect cache): a
/// pending flag claims the computation under the same lock that observed
/// the miss, and losers park on a condvar. No interleaving may duplicate
/// the execution, lose a wakeup, or deadlock.
#[test]
fn single_flight_executes_exactly_once_under_all_interleavings() {
    struct Flight {
        value: Option<u64>,
        pending: bool,
    }

    fn get_or_compute(state: &Mutex<Flight>, cv: &Condvar, execs: &AtomicUsize) -> u64 {
        let mut st = state.lock().unwrap();
        loop {
            if let Some(v) = st.value {
                return v;
            }
            if !st.pending {
                break;
            }
            st = cv.wait(st).unwrap();
        }
        st.pending = true;
        drop(st);
        execs.fetch_add(1, Ordering::SeqCst);
        let mut st = state.lock().unwrap();
        st.pending = false;
        st.value = Some(42);
        drop(st);
        cv.notify_all();
        42
    }

    model(|| {
        let state = Arc::new(Mutex::new(Flight {
            value: None,
            pending: false,
        }));
        let cv = Arc::new(Condvar::new());
        let execs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let state = Arc::clone(&state);
            let cv = Arc::clone(&cv);
            let execs = Arc::clone(&execs);
            handles.push(thread::spawn(move || get_or_compute(&state, &cv, &execs)));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(execs.load(Ordering::SeqCst), 1);
    });
}

/// ABBA lock ordering: the explorer must reach the interleaving where both
/// threads hold one lock and want the other, and report the deadlock.
#[test]
fn explorer_detects_abba_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let t = {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    let _ga = a.lock().unwrap();
                    let _gb = b.lock().unwrap();
                })
            };
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            let _ = t.join();
        });
    }));
    assert!(result.is_err(), "ABBA deadlock was not detected");
}

/// A waiting consumer and a notifying producer: no interleaving may lose
/// the wakeup (which would surface as a deadlock panic).
#[test]
fn condvar_wakeups_are_never_lost() {
    model(|| {
        let state = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let consumer = {
            let state = Arc::clone(&state);
            let cv = Arc::clone(&cv);
            thread::spawn(move || {
                let mut ready = state.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            })
        };
        *state.lock().unwrap() = true;
        cv.notify_all();
        consumer.join().unwrap();
    });
}

/// Two readers must be able to overlap inside an RwLock read section in at
/// least one explored interleaving, and no interleaving may deadlock.
#[test]
fn rwlock_readers_overlap_and_writers_exclude() {
    let overlap_seen = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&overlap_seen);
    model(move || {
        let lock = Arc::new(RwLock::new(0u64));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            let seen = Arc::clone(&seen);
            handles.push(thread::spawn(move || {
                let g = lock.read().unwrap();
                let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                seen.fetch_max(now, Ordering::SeqCst);
                thread::yield_now();
                inside.fetch_sub(1, Ordering::SeqCst);
                *g
            }));
        }
        let writer = {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            thread::spawn(move || {
                let mut g = lock.write().unwrap();
                assert_eq!(
                    inside.load(Ordering::SeqCst),
                    0,
                    "writer overlapped a reader"
                );
                *g += 1;
                0u64
            })
        };
        handles.push(writer);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read().unwrap(), 1);
    });
    assert_eq!(
        overlap_seen.load(Ordering::SeqCst),
        2,
        "no explored schedule had both readers inside simultaneously"
    );
}

/// A panic on a modeled thread is caught and returned through join, exactly
/// like `std::thread` — and a handled join error does not fail the model.
#[test]
fn join_returns_the_panic_payload() {
    model(|| {
        let t = thread::spawn(|| panic!("boom"));
        let err = t.join().expect_err("panic must surface through join");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("boom"));
    });
}

/// Outside `model()`, the shims behave like plain std primitives.
#[test]
fn fallback_mode_matches_std_semantics() {
    let m = Mutex::new(5u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);

    let rw = RwLock::new(1u32);
    assert_eq!(*rw.read().unwrap(), 1);
    *rw.write().unwrap() = 2;
    assert_eq!(*rw.read().unwrap(), 2);

    let t = thread::spawn(|| 7u32);
    assert_eq!(t.join().unwrap(), 7);
}
