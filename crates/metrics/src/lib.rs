//! # vaq-metrics
//!
//! Evaluation metrics matching the paper's §5.1 "Metrics":
//!
//! * [`sequence_prf`] — sequence-level precision/recall/F1 with IOU
//!   matching at threshold `η` (the paper uses `η = 0.5`): a reported
//!   sequence is a true positive iff its clip-IOU with some ground-truth
//!   sequence reaches `η`; a ground-truth sequence missed by every reported
//!   sequence is a false negative.
//! * [`frame_prf`] — frame-level precision/recall/F1 (used in Figure 5's
//!   clip-size study): result sequences are expanded to frames and compared
//!   against the annotated ground-truth *frame spans*, making results with
//!   different clip sizes comparable.
//! * [`rate_metrics`] — raw detector rates (TPR/FPR) over aligned
//!   prediction/truth indicator sequences, and [`clip_fpr`] for the
//!   "with SVAQD" rows of Table 5 (fraction of truly-negative clips the
//!   aggregated indicator still flags).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vaq_types::{SequenceSet, VideoGeometry};
use vaq_video::span::{intersect_spans, normalize_spans, total_frames, FrameSpan};

/// Confusion counts with derived precision/recall/F1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrecisionRecall {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
}

impl PrecisionRecall {
    /// `tp / (tp + fp)`; `1.0` when nothing was reported and nothing was
    /// expected, `0.0` when reports exist but none are right.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return if self.fn_ == 0 { 1.0 } else { 0.0 };
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// `tp / (tp + fn)`; `1.0` when there was nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return if self.fp == 0 { 1.0 } else { 0.0 };
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Sequence-level matching at IOU threshold `eta` (paper default 0.5).
pub fn sequence_prf(result: &SequenceSet, truth: &SequenceSet, eta: f64) -> PrecisionRecall {
    assert!((0.0..=1.0).contains(&eta), "eta {eta} outside [0,1]");
    let mut counts = PrecisionRecall::default();
    for r in result.intervals() {
        if truth.intervals().iter().any(|t| r.iou(t) >= eta) {
            counts.tp += 1;
        } else {
            counts.fp += 1;
        }
    }
    for t in truth.intervals() {
        if !result.intervals().iter().any(|r| r.iou(t) >= eta) {
            counts.fn_ += 1;
        }
    }
    counts
}

/// Expands a clip-level sequence set to frame spans under `geometry`.
pub fn sequences_to_frame_spans(set: &SequenceSet, geometry: &VideoGeometry) -> Vec<FrameSpan> {
    let fpc = geometry.frames_per_clip();
    normalize_spans(
        set.intervals()
            .iter()
            .map(|iv| FrameSpan::new(iv.start.raw() * fpc, (iv.end.raw() + 1) * fpc))
            .collect(),
    )
}

/// Frame-level precision/recall/F1: the reported sequences (clip-level,
/// under `geometry`) against annotated ground-truth frame spans.
pub fn frame_prf(
    result: &SequenceSet,
    geometry: &VideoGeometry,
    truth_spans: &[FrameSpan],
) -> PrecisionRecall {
    let result_spans = sequences_to_frame_spans(result, geometry);
    let truth = normalize_spans(truth_spans.to_vec());
    let tp = total_frames(&intersect_spans(&result_spans, &truth));
    let reported = total_frames(&result_spans);
    let expected = total_frames(&truth);
    PrecisionRecall {
        tp,
        fp: reported - tp,
        fn_: expected - tp,
    }
}

/// Raw rates over aligned per-occurrence-unit indicator sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RateMetrics {
    /// Prediction positive, truth positive.
    pub tp: u64,
    /// Prediction positive, truth negative.
    pub fp: u64,
    /// Prediction negative, truth negative.
    pub tn: u64,
    /// Prediction negative, truth positive.
    pub fn_: u64,
}

impl RateMetrics {
    /// True-positive rate `tp / (tp + fn)`.
    pub fn tpr(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// False-positive rate `fp / (fp + tn)`.
    pub fn fpr(&self) -> f64 {
        if self.fp + self.tn == 0 {
            return 0.0;
        }
        self.fp as f64 / (self.fp + self.tn) as f64
    }
}

/// Confusion rates of aligned indicator sequences.
///
/// # Panics
/// Panics if the slices' lengths differ.
pub fn rate_metrics(predictions: &[bool], truth: &[bool]) -> RateMetrics {
    assert_eq!(
        predictions.len(),
        truth.len(),
        "prediction/truth length mismatch"
    );
    let mut m = RateMetrics::default();
    for (&p, &t) in predictions.iter().zip(truth) {
        match (p, t) {
            (true, true) => m.tp += 1,
            (true, false) => m.fp += 1,
            (false, false) => m.tn += 1,
            (false, true) => m.fn_ += 1,
        }
    }
    m
}

/// Clip-level FPR of an aggregated indicator: the fraction of truly
/// negative clips still flagged positive (Table 5's "w/ SVAQD" columns).
pub fn clip_fpr(clip_predictions: &[bool], clip_truth: &[bool]) -> f64 {
    rate_metrics(clip_predictions, clip_truth).fpr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_types::ClipInterval;

    fn set(ivs: &[(u64, u64)]) -> SequenceSet {
        SequenceSet::from_intervals(ivs.iter().map(|&(s, e)| ClipInterval::new(s, e)).collect())
    }

    #[test]
    fn perfect_match_is_f1_one() {
        let truth = set(&[(0, 9), (20, 29)]);
        let m = sequence_prf(&truth, &truth, 0.5);
        assert_eq!((m.tp, m.fp, m.fn_), (2, 0, 0));
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn iou_threshold_governs_matching() {
        let truth = set(&[(0, 9)]);
        // [0,4] vs [0,9]: IOU = 5/10 = 0.5.
        let result = set(&[(0, 4)]);
        assert_eq!(sequence_prf(&result, &truth, 0.5).f1(), 1.0);
        assert_eq!(sequence_prf(&result, &truth, 0.6).f1(), 0.0);
    }

    #[test]
    fn spurious_and_missed_sequences_counted() {
        let truth = set(&[(0, 9), (50, 59)]);
        let result = set(&[(0, 9), (100, 109)]);
        let m = sequence_prf(&result, &truth, 0.5);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 1, 1));
        assert!((m.precision() - 0.5).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        assert!((m.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let empty = SequenceSet::empty();
        let truth = set(&[(0, 9)]);
        let m = sequence_prf(&empty, &truth, 0.5);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.precision(), 0.0);
        let m = sequence_prf(&empty, &empty, 0.5);
        assert_eq!(m.f1(), 1.0, "nothing to find, nothing reported");
        let m = sequence_prf(&truth, &empty, 0.5);
        assert_eq!(m.precision(), 0.0);
    }

    #[test]
    fn one_result_covering_two_truths() {
        // A single long result spanning two short ground truths can match
        // at most those whose IOU clears η.
        let truth = set(&[(0, 4), (10, 14)]);
        let result = set(&[(0, 14)]);
        let m = sequence_prf(&result, &truth, 0.5);
        assert_eq!(
            (m.tp, m.fp, m.fn_),
            (0, 1, 2),
            "15-clip result vs 5-clip truths"
        );
    }

    #[test]
    fn frame_level_f1_counts_frames() {
        let g = VideoGeometry::PAPER_DEFAULT; // 50 frames/clip
        let result = set(&[(0, 1)]); // frames 0..100
        let truth = vec![FrameSpan::new(25, 125)];
        let m = frame_prf(&result, &g, &truth);
        assert_eq!(m.tp, 75);
        assert_eq!(m.fp, 25);
        assert_eq!(m.fn_, 25);
        assert!((m.f1() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn frame_level_is_clip_size_invariant_for_aligned_results() {
        // The same frame coverage reported under two different clip sizes
        // yields the same frame-level F1 — the Figure 5 premise.
        let truth = vec![FrameSpan::new(0, 600)];
        let g_small = VideoGeometry::new(10, 2, 30).unwrap(); // 20-frame clips
        let g_large = VideoGeometry::new(10, 6, 30).unwrap(); // 60-frame clips
        let r_small = set(&[(0, 29)]); // frames 0..600
        let r_large = set(&[(0, 9)]); // frames 0..600
        let f_small = frame_prf(&r_small, &g_small, &truth).f1();
        let f_large = frame_prf(&r_large, &g_large, &truth).f1();
        assert!((f_small - f_large).abs() < 1e-12);
        assert_eq!(f_small, 1.0);
    }

    #[test]
    fn rate_metrics_confusion() {
        let pred = [true, true, false, false, true];
        let truth = [true, false, false, true, true];
        let m = rate_metrics(&pred, &truth);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 1, 1));
        assert!((m.tpr() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.fpr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clip_fpr_is_fpr() {
        let pred = [true, false, true, false];
        let truth = [false, false, false, false];
        assert!((clip_fpr(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = rate_metrics(&[true], &[true, false]);
    }

    #[test]
    fn f1_zero_when_no_overlap() {
        let m = PrecisionRecall {
            tp: 0,
            fp: 3,
            fn_: 3,
        };
        assert_eq!(m.f1(), 0.0);
    }
}
