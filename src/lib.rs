//! # vaq — Querying For Actions Over Videos
//!
//! Facade crate re-exporting the whole `vaq` workspace: a Rust reproduction
//! of *Querying For Actions Over Videos* (Chao & Koudas, EDBT 2024).
//!
//! See the individual crates for the pieces:
//!
//! * [`types`] — ids, intervals, vocabularies, the query model.
//! * [`scanstats`] — scan statistics: Naus approximation, critical values,
//!   the SVAQD kernel background-rate estimator.
//! * [`detect`] — simulated object detectors / action recognizers / tracker.
//! * [`video`] — the scene-script synthetic video substrate.
//! * [`datasets`] — the paper's YouTube-like and Movies-like benchmarks.
//! * [`storage`] — clip score tables with access accounting.
//! * [`core`] — SVAQ, SVAQD (online) and RVAQ + baselines (offline).
//! * [`metrics`] — F1 / IOU matching / FPR evaluation.
//! * [`query`] — the VAQ-SQL declarative frontend.
//! * [`trace`] — deterministic tracing & telemetry (spans, counters,
//!   histograms, sinks).
//!
//! # Example
//!
//! Script a one-minute video, stream it through SVAQD, and check the
//! result against ground truth:
//!
//! ```
//! use vaq::core::{OnlineConfig, OnlineEngine};
//! use vaq::detect::{profiles, SimulatedActionRecognizer, SimulatedObjectDetector};
//! use vaq::types::vocab;
//! use vaq::video::{SceneScriptBuilder, VideoStream};
//! use vaq::{Query, VideoGeometry};
//!
//! let objects = vocab::coco_objects();
//! let actions = vocab::kinetics_actions();
//! let geometry = VideoGeometry::PAPER_DEFAULT;
//!
//! let mut script = SceneScriptBuilder::new(1800, geometry);
//! script.object_span(objects.object("car")?, 300, 1500)?;
//! script.action_span(actions.action("jumping")?, 600, 1200)?;
//! let script = script.build();
//!
//! let query = Query::new(actions.action("jumping")?, vec![objects.object("car")?]);
//! let detector =
//!     SimulatedObjectDetector::new(profiles::ideal_object(), objects.len() as u32, 1);
//! let recognizer =
//!     SimulatedActionRecognizer::new(profiles::ideal_action(), actions.len() as u32, 1);
//!
//! let engine = OnlineEngine::new(query.clone(), OnlineConfig::svaqd(), &geometry,
//!                                &detector, &recognizer)?;
//! let result = engine.run(VideoStream::new(&script));
//! assert_eq!(result.sequences, script.ground_truth(&query, 0.5));
//! # Ok::<(), vaq::VaqError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
pub use vaq_core as core;
pub use vaq_datasets as datasets;
pub use vaq_detect as detect;
pub use vaq_metrics as metrics;
pub use vaq_query as query;
pub use vaq_scanstats as scanstats;
pub use vaq_storage as storage;
pub use vaq_types as types;
pub use vaq_video as video;
// `trace` is already the renamed dependency (`package = "vaq-trace"`).
pub use trace;

pub use vaq_types::{
    ActionType, BBox, ClipId, ClipInterval, FrameId, ObjectType, Query, QueryBuilder, Result,
    SequenceSet, ShotId, TrackId, VaqError, VideoGeometry, VideoId,
};
