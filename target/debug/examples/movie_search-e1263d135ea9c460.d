/root/repo/target/debug/examples/movie_search-e1263d135ea9c460.d: examples/movie_search.rs Cargo.toml

/root/repo/target/debug/examples/libmovie_search-e1263d135ea9c460.rmeta: examples/movie_search.rs Cargo.toml

examples/movie_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
