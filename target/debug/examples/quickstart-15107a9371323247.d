/root/repo/target/debug/examples/quickstart-15107a9371323247.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-15107a9371323247.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
