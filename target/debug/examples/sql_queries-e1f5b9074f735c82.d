/root/repo/target/debug/examples/sql_queries-e1f5b9074f735c82.d: examples/sql_queries.rs Cargo.toml

/root/repo/target/debug/examples/libsql_queries-e1f5b9074f735c82.rmeta: examples/sql_queries.rs Cargo.toml

examples/sql_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
