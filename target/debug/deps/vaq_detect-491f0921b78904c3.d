/root/repo/target/debug/deps/vaq_detect-491f0921b78904c3.d: crates/detect/src/lib.rs crates/detect/src/api.rs crates/detect/src/cache.rs crates/detect/src/endtoend.rs crates/detect/src/fault.rs crates/detect/src/latency.rs crates/detect/src/noise.rs crates/detect/src/profiles.rs crates/detect/src/sim.rs crates/detect/src/sync.rs crates/detect/src/telemetry.rs crates/detect/src/tracker.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_detect-491f0921b78904c3.rmeta: crates/detect/src/lib.rs crates/detect/src/api.rs crates/detect/src/cache.rs crates/detect/src/endtoend.rs crates/detect/src/fault.rs crates/detect/src/latency.rs crates/detect/src/noise.rs crates/detect/src/profiles.rs crates/detect/src/sim.rs crates/detect/src/sync.rs crates/detect/src/telemetry.rs crates/detect/src/tracker.rs Cargo.toml

crates/detect/src/lib.rs:
crates/detect/src/api.rs:
crates/detect/src/cache.rs:
crates/detect/src/endtoend.rs:
crates/detect/src/fault.rs:
crates/detect/src/latency.rs:
crates/detect/src/noise.rs:
crates/detect/src/profiles.rs:
crates/detect/src/sim.rs:
crates/detect/src/sync.rs:
crates/detect/src/telemetry.rs:
crates/detect/src/tracker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
