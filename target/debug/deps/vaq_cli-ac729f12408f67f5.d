/root/repo/target/debug/deps/vaq_cli-ac729f12408f67f5.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libvaq_cli-ac729f12408f67f5.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libvaq_cli-ac729f12408f67f5.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
