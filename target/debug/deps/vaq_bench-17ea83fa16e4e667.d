/root/repo/target/debug/deps/vaq_bench-17ea83fa16e4e667.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/offline_exp.rs crates/bench/src/experiments/online_exp.rs crates/bench/src/fmt.rs crates/bench/src/models.rs crates/bench/src/offline.rs crates/bench/src/runner.rs crates/bench/src/scale.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_bench-17ea83fa16e4e667.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/offline_exp.rs crates/bench/src/experiments/online_exp.rs crates/bench/src/fmt.rs crates/bench/src/models.rs crates/bench/src/offline.rs crates/bench/src/runner.rs crates/bench/src/scale.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/offline_exp.rs:
crates/bench/src/experiments/online_exp.rs:
crates/bench/src/fmt.rs:
crates/bench/src/models.rs:
crates/bench/src/offline.rs:
crates/bench/src/runner.rs:
crates/bench/src/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
