/root/repo/target/debug/deps/vaq_bench-b80e2496322b9b89.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/offline_exp.rs crates/bench/src/experiments/online_exp.rs crates/bench/src/fmt.rs crates/bench/src/models.rs crates/bench/src/offline.rs crates/bench/src/runner.rs crates/bench/src/scale.rs

/root/repo/target/debug/deps/libvaq_bench-b80e2496322b9b89.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/offline_exp.rs crates/bench/src/experiments/online_exp.rs crates/bench/src/fmt.rs crates/bench/src/models.rs crates/bench/src/offline.rs crates/bench/src/runner.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/offline_exp.rs:
crates/bench/src/experiments/online_exp.rs:
crates/bench/src/fmt.rs:
crates/bench/src/models.rs:
crates/bench/src/offline.rs:
crates/bench/src/runner.rs:
crates/bench/src/scale.rs:
