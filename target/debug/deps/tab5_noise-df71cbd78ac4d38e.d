/root/repo/target/debug/deps/tab5_noise-df71cbd78ac4d38e.d: crates/bench/src/bin/tab5_noise.rs

/root/repo/target/debug/deps/libtab5_noise-df71cbd78ac4d38e.rmeta: crates/bench/src/bin/tab5_noise.rs

crates/bench/src/bin/tab5_noise.rs:
