/root/repo/target/debug/deps/crossbeam-cfc9d07afe1b59d9.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-cfc9d07afe1b59d9.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
