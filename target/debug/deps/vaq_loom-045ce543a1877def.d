/root/repo/target/debug/deps/vaq_loom-045ce543a1877def.d: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/debug/deps/libvaq_loom-045ce543a1877def.rmeta: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

crates/loom/src/lib.rs:
crates/loom/src/sched.rs:
crates/loom/src/sync.rs:
crates/loom/src/thread.rs:
