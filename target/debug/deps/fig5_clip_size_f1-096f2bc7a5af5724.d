/root/repo/target/debug/deps/fig5_clip_size_f1-096f2bc7a5af5724.d: crates/bench/src/bin/fig5_clip_size_f1.rs

/root/repo/target/debug/deps/libfig5_clip_size_f1-096f2bc7a5af5724.rmeta: crates/bench/src/bin/fig5_clip_size_f1.rs

crates/bench/src/bin/fig5_clip_size_f1.rs:
