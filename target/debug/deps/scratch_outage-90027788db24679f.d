/root/repo/target/debug/deps/scratch_outage-90027788db24679f.d: tests/scratch_outage.rs

/root/repo/target/debug/deps/scratch_outage-90027788db24679f: tests/scratch_outage.rs

tests/scratch_outage.rs:
