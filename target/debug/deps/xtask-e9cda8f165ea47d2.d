/root/repo/target/debug/deps/xtask-e9cda8f165ea47d2.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-e9cda8f165ea47d2.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
