/root/repo/target/debug/deps/fig4_clip_size_sequences-b627ed687abb4665.d: crates/bench/src/bin/fig4_clip_size_sequences.rs

/root/repo/target/debug/deps/libfig4_clip_size_sequences-b627ed687abb4665.rmeta: crates/bench/src/bin/fig4_clip_size_sequences.rs

crates/bench/src/bin/fig4_clip_size_sequences.rs:
