/root/repo/target/debug/deps/bytes-b489c60b870db172.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b489c60b870db172.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b489c60b870db172.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
