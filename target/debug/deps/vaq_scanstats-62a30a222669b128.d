/root/repo/target/debug/deps/vaq_scanstats-62a30a222669b128.d: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

/root/repo/target/debug/deps/libvaq_scanstats-62a30a222669b128.rlib: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

/root/repo/target/debug/deps/libvaq_scanstats-62a30a222669b128.rmeta: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

crates/scanstats/src/lib.rs:
crates/scanstats/src/binomial.rs:
crates/scanstats/src/critical.rs:
crates/scanstats/src/exact.rs:
crates/scanstats/src/kernel.rs:
crates/scanstats/src/markov.rs:
crates/scanstats/src/naus.rs:
crates/scanstats/src/sync.rs:
