/root/repo/target/debug/deps/serde_json-6cd3926f999ff20a.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6cd3926f999ff20a.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6cd3926f999ff20a.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
