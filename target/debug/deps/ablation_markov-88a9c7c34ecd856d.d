/root/repo/target/debug/deps/ablation_markov-88a9c7c34ecd856d.d: crates/bench/src/bin/ablation_markov.rs

/root/repo/target/debug/deps/libablation_markov-88a9c7c34ecd856d.rmeta: crates/bench/src/bin/ablation_markov.rs

crates/bench/src/bin/ablation_markov.rs:
