/root/repo/target/debug/deps/vaq_loom-e307cdea3ed9c9fc.d: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/debug/deps/libvaq_loom-e307cdea3ed9c9fc.rlib: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/debug/deps/libvaq_loom-e307cdea3ed9c9fc.rmeta: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

crates/loom/src/lib.rs:
crates/loom/src/sched.rs:
crates/loom/src/sync.rs:
crates/loom/src/thread.rs:
