/root/repo/target/debug/deps/vaq_video-6562dcabafd5ebb2.d: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

/root/repo/target/debug/deps/libvaq_video-6562dcabafd5ebb2.rlib: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

/root/repo/target/debug/deps/libvaq_video-6562dcabafd5ebb2.rmeta: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

crates/video/src/lib.rs:
crates/video/src/frame.rs:
crates/video/src/gen.rs:
crates/video/src/persist.rs:
crates/video/src/script.rs:
crates/video/src/span.rs:
