/root/repo/target/debug/deps/xtask-9101417f1f446fef.d: crates/xtask/src/lib.rs crates/xtask/src/analyze.rs crates/xtask/src/api_lock.rs crates/xtask/src/casts.rs crates/xtask/src/graph.rs crates/xtask/src/items.rs crates/xtask/src/lexer.rs crates/xtask/src/rules.rs crates/xtask/src/workspace.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-9101417f1f446fef.rmeta: crates/xtask/src/lib.rs crates/xtask/src/analyze.rs crates/xtask/src/api_lock.rs crates/xtask/src/casts.rs crates/xtask/src/graph.rs crates/xtask/src/items.rs crates/xtask/src/lexer.rs crates/xtask/src/rules.rs crates/xtask/src/workspace.rs Cargo.toml

crates/xtask/src/lib.rs:
crates/xtask/src/analyze.rs:
crates/xtask/src/api_lock.rs:
crates/xtask/src/casts.rs:
crates/xtask/src/graph.rs:
crates/xtask/src/items.rs:
crates/xtask/src/lexer.rs:
crates/xtask/src/rules.rs:
crates/xtask/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
