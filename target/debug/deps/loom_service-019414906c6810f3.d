/root/repo/target/debug/deps/loom_service-019414906c6810f3.d: crates/core/tests/loom_service.rs

/root/repo/target/debug/deps/loom_service-019414906c6810f3: crates/core/tests/loom_service.rs

crates/core/tests/loom_service.rs:
