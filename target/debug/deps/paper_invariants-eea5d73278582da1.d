/root/repo/target/debug/deps/paper_invariants-eea5d73278582da1.d: tests/paper_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_invariants-eea5d73278582da1.rmeta: tests/paper_invariants.rs Cargo.toml

tests/paper_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
