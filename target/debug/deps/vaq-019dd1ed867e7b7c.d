/root/repo/target/debug/deps/vaq-019dd1ed867e7b7c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvaq-019dd1ed867e7b7c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
