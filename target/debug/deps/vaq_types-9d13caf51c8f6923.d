/root/repo/target/debug/deps/vaq_types-9d13caf51c8f6923.d: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

/root/repo/target/debug/deps/libvaq_types-9d13caf51c8f6923.rlib: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

/root/repo/target/debug/deps/libvaq_types-9d13caf51c8f6923.rmeta: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

crates/types/src/lib.rs:
crates/types/src/conv.rs:
crates/types/src/error.rs:
crates/types/src/geometry.rs:
crates/types/src/ids.rs:
crates/types/src/interval.rs:
crates/types/src/query.rs:
crates/types/src/timing.rs:
crates/types/src/vocab.rs:
