/root/repo/target/debug/deps/tab6_offline_movie-175be487120b0b79.d: crates/bench/src/bin/tab6_offline_movie.rs

/root/repo/target/debug/deps/libtab6_offline_movie-175be487120b0b79.rmeta: crates/bench/src/bin/tab6_offline_movie.rs

crates/bench/src/bin/tab6_offline_movie.rs:
