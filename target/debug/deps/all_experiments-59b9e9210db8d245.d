/root/repo/target/debug/deps/all_experiments-59b9e9210db8d245.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-59b9e9210db8d245.rmeta: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
