/root/repo/target/debug/deps/vaq_storage-f95e4902189e6daf.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

/root/repo/target/debug/deps/vaq_storage-f95e4902189e6daf: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/cost.rs:
crates/storage/src/file.rs:
crates/storage/src/fsck.rs:
crates/storage/src/table.rs:
