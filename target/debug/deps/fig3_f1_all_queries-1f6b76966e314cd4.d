/root/repo/target/debug/deps/fig3_f1_all_queries-1f6b76966e314cd4.d: crates/bench/src/bin/fig3_f1_all_queries.rs

/root/repo/target/debug/deps/libfig3_f1_all_queries-1f6b76966e314cd4.rmeta: crates/bench/src/bin/fig3_f1_all_queries.rs

crates/bench/src/bin/fig3_f1_all_queries.rs:
