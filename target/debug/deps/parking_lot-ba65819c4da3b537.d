/root/repo/target/debug/deps/parking_lot-ba65819c4da3b537.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-ba65819c4da3b537.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-ba65819c4da3b537.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
