/root/repo/target/debug/deps/serde_derive-6533ce0bb0cafa5a.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-6533ce0bb0cafa5a.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
