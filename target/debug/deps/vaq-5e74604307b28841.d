/root/repo/target/debug/deps/vaq-5e74604307b28841.d: src/lib.rs

/root/repo/target/debug/deps/libvaq-5e74604307b28841.rmeta: src/lib.rs

src/lib.rs:
