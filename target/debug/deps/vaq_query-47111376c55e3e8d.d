/root/repo/target/debug/deps/vaq_query-47111376c55e3e8d.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_query-47111376c55e3e8d.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
