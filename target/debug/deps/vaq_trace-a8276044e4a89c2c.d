/root/repo/target/debug/deps/vaq_trace-a8276044e4a89c2c.d: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libvaq_trace-a8276044e4a89c2c.rlib: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libvaq_trace-a8276044e4a89c2c.rmeta: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/clock.rs:
crates/trace/src/metrics.rs:
crates/trace/src/record.rs:
crates/trace/src/sink.rs:
