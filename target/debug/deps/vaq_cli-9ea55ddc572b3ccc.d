/root/repo/target/debug/deps/vaq_cli-9ea55ddc572b3ccc.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libvaq_cli-9ea55ddc572b3ccc.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
