/root/repo/target/debug/deps/ablation_update_policy-c5eb87d5beca0c93.d: crates/bench/src/bin/ablation_update_policy.rs

/root/repo/target/debug/deps/libablation_update_policy-c5eb87d5beca0c93.rmeta: crates/bench/src/bin/ablation_update_policy.rs

crates/bench/src/bin/ablation_update_policy.rs:
