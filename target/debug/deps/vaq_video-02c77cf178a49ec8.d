/root/repo/target/debug/deps/vaq_video-02c77cf178a49ec8.d: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

/root/repo/target/debug/deps/libvaq_video-02c77cf178a49ec8.rlib: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

/root/repo/target/debug/deps/libvaq_video-02c77cf178a49ec8.rmeta: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

crates/video/src/lib.rs:
crates/video/src/frame.rs:
crates/video/src/gen.rs:
crates/video/src/persist.rs:
crates/video/src/script.rs:
crates/video/src/span.rs:
