/root/repo/target/debug/deps/vaq_video-bca9aba5899b42aa.d: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

/root/repo/target/debug/deps/libvaq_video-bca9aba5899b42aa.rmeta: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

crates/video/src/lib.rs:
crates/video/src/frame.rs:
crates/video/src/gen.rs:
crates/video/src/persist.rs:
crates/video/src/script.rs:
crates/video/src/span.rs:
