/root/repo/target/debug/deps/bytes-c054dfa14899b537.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c054dfa14899b537.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c054dfa14899b537.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
