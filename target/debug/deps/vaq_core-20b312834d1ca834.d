/root/repo/target/debug/deps/vaq_core-20b312834d1ca834.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/offline/mod.rs crates/core/src/offline/baselines.rs crates/core/src/offline/candidates.rs crates/core/src/offline/ingest.rs crates/core/src/offline/repository.rs crates/core/src/offline/rvaq.rs crates/core/src/offline/scoring.rs crates/core/src/offline/tbclip.rs crates/core/src/online/mod.rs crates/core/src/online/engine.rs crates/core/src/online/indicator.rs crates/core/src/online/multi.rs crates/core/src/online/service/mod.rs crates/core/src/online/service/queue.rs crates/core/src/online/service/registry.rs crates/core/src/online/service/service.rs crates/core/src/online/service/sync.rs crates/core/src/online/service/tenant.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_core-20b312834d1ca834.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/offline/mod.rs crates/core/src/offline/baselines.rs crates/core/src/offline/candidates.rs crates/core/src/offline/ingest.rs crates/core/src/offline/repository.rs crates/core/src/offline/rvaq.rs crates/core/src/offline/scoring.rs crates/core/src/offline/tbclip.rs crates/core/src/online/mod.rs crates/core/src/online/engine.rs crates/core/src/online/indicator.rs crates/core/src/online/multi.rs crates/core/src/online/service/mod.rs crates/core/src/online/service/queue.rs crates/core/src/online/service/registry.rs crates/core/src/online/service/service.rs crates/core/src/online/service/sync.rs crates/core/src/online/service/tenant.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/offline/mod.rs:
crates/core/src/offline/baselines.rs:
crates/core/src/offline/candidates.rs:
crates/core/src/offline/ingest.rs:
crates/core/src/offline/repository.rs:
crates/core/src/offline/rvaq.rs:
crates/core/src/offline/scoring.rs:
crates/core/src/offline/tbclip.rs:
crates/core/src/online/mod.rs:
crates/core/src/online/engine.rs:
crates/core/src/online/indicator.rs:
crates/core/src/online/multi.rs:
crates/core/src/online/service/mod.rs:
crates/core/src/online/service/queue.rs:
crates/core/src/online/service/registry.rs:
crates/core/src/online/service/service.rs:
crates/core/src/online/service/sync.rs:
crates/core/src/online/service/tenant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
