/root/repo/target/debug/deps/vaq_video-122332c4f79e9494.d: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_video-122332c4f79e9494.rmeta: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs Cargo.toml

crates/video/src/lib.rs:
crates/video/src/frame.rs:
crates/video/src/gen.rs:
crates/video/src/persist.rs:
crates/video/src/script.rs:
crates/video/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
