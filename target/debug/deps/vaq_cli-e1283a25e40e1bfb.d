/root/repo/target/debug/deps/vaq_cli-e1283a25e40e1bfb.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libvaq_cli-e1283a25e40e1bfb.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
