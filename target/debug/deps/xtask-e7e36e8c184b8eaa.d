/root/repo/target/debug/deps/xtask-e7e36e8c184b8eaa.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/libxtask-e7e36e8c184b8eaa.rmeta: crates/xtask/src/main.rs

crates/xtask/src/main.rs:
