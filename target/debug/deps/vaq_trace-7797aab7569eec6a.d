/root/repo/target/debug/deps/vaq_trace-7797aab7569eec6a.d: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_trace-7797aab7569eec6a.rmeta: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/clock.rs:
crates/trace/src/metrics.rs:
crates/trace/src/record.rs:
crates/trace/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
