/root/repo/target/debug/deps/fig2_background_prob-18eeb4fe46170f7c.d: crates/bench/src/bin/fig2_background_prob.rs

/root/repo/target/debug/deps/libfig2_background_prob-18eeb4fe46170f7c.rmeta: crates/bench/src/bin/fig2_background_prob.rs

crates/bench/src/bin/fig2_background_prob.rs:
