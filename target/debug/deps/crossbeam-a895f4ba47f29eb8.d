/root/repo/target/debug/deps/crossbeam-a895f4ba47f29eb8.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a895f4ba47f29eb8.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a895f4ba47f29eb8.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
