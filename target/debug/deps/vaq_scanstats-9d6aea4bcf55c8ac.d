/root/repo/target/debug/deps/vaq_scanstats-9d6aea4bcf55c8ac.d: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

/root/repo/target/debug/deps/libvaq_scanstats-9d6aea4bcf55c8ac.rlib: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

/root/repo/target/debug/deps/libvaq_scanstats-9d6aea4bcf55c8ac.rmeta: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

crates/scanstats/src/lib.rs:
crates/scanstats/src/binomial.rs:
crates/scanstats/src/critical.rs:
crates/scanstats/src/exact.rs:
crates/scanstats/src/kernel.rs:
crates/scanstats/src/markov.rs:
crates/scanstats/src/naus.rs:
crates/scanstats/src/sync.rs:
