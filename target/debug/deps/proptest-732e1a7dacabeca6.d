/root/repo/target/debug/deps/proptest-732e1a7dacabeca6.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-732e1a7dacabeca6.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-732e1a7dacabeca6.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
