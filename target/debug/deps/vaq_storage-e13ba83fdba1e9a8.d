/root/repo/target/debug/deps/vaq_storage-e13ba83fdba1e9a8.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_storage-e13ba83fdba1e9a8.rmeta: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/cost.rs:
crates/storage/src/file.rs:
crates/storage/src/fsck.rs:
crates/storage/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
