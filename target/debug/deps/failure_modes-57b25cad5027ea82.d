/root/repo/target/debug/deps/failure_modes-57b25cad5027ea82.d: tests/failure_modes.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_modes-57b25cad5027ea82.rmeta: tests/failure_modes.rs Cargo.toml

tests/failure_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
