/root/repo/target/debug/deps/vaq_query-4fbfb6d6da89d23d.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

/root/repo/target/debug/deps/libvaq_query-4fbfb6d6da89d23d.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

/root/repo/target/debug/deps/libvaq_query-4fbfb6d6da89d23d.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
