/root/repo/target/debug/deps/differential-2733861a934efe41.d: tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-2733861a934efe41.rmeta: tests/differential.rs Cargo.toml

tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
