/root/repo/target/debug/deps/vaq_types-f21f711d2f23f4e4.d: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

/root/repo/target/debug/deps/libvaq_types-f21f711d2f23f4e4.rlib: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

/root/repo/target/debug/deps/libvaq_types-f21f711d2f23f4e4.rmeta: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

crates/types/src/lib.rs:
crates/types/src/conv.rs:
crates/types/src/error.rs:
crates/types/src/geometry.rs:
crates/types/src/ids.rs:
crates/types/src/interval.rs:
crates/types/src/query.rs:
crates/types/src/timing.rs:
crates/types/src/vocab.rs:
