/root/repo/target/debug/deps/vaq-41896955d19aa707.d: src/lib.rs

/root/repo/target/debug/deps/libvaq-41896955d19aa707.rmeta: src/lib.rs

src/lib.rs:
