/root/repo/target/debug/deps/end_to_end-da52dd54403da3cb.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-da52dd54403da3cb.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
