/root/repo/target/debug/deps/bytes-8c0d4bee0b774b00.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-8c0d4bee0b774b00.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
