/root/repo/target/debug/deps/tab4_models-89769cd8c446aff1.d: crates/bench/src/bin/tab4_models.rs

/root/repo/target/debug/deps/libtab4_models-89769cd8c446aff1.rmeta: crates/bench/src/bin/tab4_models.rs

crates/bench/src/bin/tab4_models.rs:
