/root/repo/target/debug/deps/vaq_cli-883ab5ec04bba4a7.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/vaq_cli-883ab5ec04bba4a7: crates/cli/src/main.rs

crates/cli/src/main.rs:
