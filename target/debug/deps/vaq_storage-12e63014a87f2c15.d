/root/repo/target/debug/deps/vaq_storage-12e63014a87f2c15.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

/root/repo/target/debug/deps/libvaq_storage-12e63014a87f2c15.rmeta: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/cost.rs:
crates/storage/src/file.rs:
crates/storage/src/fsck.rs:
crates/storage/src/table.rs:
