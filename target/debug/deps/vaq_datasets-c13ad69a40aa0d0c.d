/root/repo/target/debug/deps/vaq_datasets-c13ad69a40aa0d0c.d: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

/root/repo/target/debug/deps/vaq_datasets-c13ad69a40aa0d0c: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

crates/datasets/src/lib.rs:
crates/datasets/src/drift.rs:
crates/datasets/src/load.rs:
crates/datasets/src/movies.rs:
crates/datasets/src/youtube.rs:
