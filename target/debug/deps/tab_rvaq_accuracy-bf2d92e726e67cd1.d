/root/repo/target/debug/deps/tab_rvaq_accuracy-bf2d92e726e67cd1.d: crates/bench/src/bin/tab_rvaq_accuracy.rs

/root/repo/target/debug/deps/libtab_rvaq_accuracy-bf2d92e726e67cd1.rmeta: crates/bench/src/bin/tab_rvaq_accuracy.rs

crates/bench/src/bin/tab_rvaq_accuracy.rs:
