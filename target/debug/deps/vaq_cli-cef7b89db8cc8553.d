/root/repo/target/debug/deps/vaq_cli-cef7b89db8cc8553.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/vaq_cli-cef7b89db8cc8553: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
