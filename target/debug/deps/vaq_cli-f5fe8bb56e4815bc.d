/root/repo/target/debug/deps/vaq_cli-f5fe8bb56e4815bc.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_cli-f5fe8bb56e4815bc.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
