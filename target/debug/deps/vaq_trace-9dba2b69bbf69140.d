/root/repo/target/debug/deps/vaq_trace-9dba2b69bbf69140.d: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libvaq_trace-9dba2b69bbf69140.rmeta: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/clock.rs:
crates/trace/src/metrics.rs:
crates/trace/src/record.rs:
crates/trace/src/sink.rs:
