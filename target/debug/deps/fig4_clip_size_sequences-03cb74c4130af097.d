/root/repo/target/debug/deps/fig4_clip_size_sequences-03cb74c4130af097.d: crates/bench/src/bin/fig4_clip_size_sequences.rs

/root/repo/target/debug/deps/libfig4_clip_size_sequences-03cb74c4130af097.rmeta: crates/bench/src/bin/fig4_clip_size_sequences.rs

crates/bench/src/bin/fig4_clip_size_sequences.rs:
