/root/repo/target/debug/deps/ablation_markov-051bc1cdd6eb8c39.d: crates/bench/src/bin/ablation_markov.rs

/root/repo/target/debug/deps/libablation_markov-051bc1cdd6eb8c39.rmeta: crates/bench/src/bin/ablation_markov.rs

crates/bench/src/bin/ablation_markov.rs:
