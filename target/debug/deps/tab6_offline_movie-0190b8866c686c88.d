/root/repo/target/debug/deps/tab6_offline_movie-0190b8866c686c88.d: crates/bench/src/bin/tab6_offline_movie.rs

/root/repo/target/debug/deps/libtab6_offline_movie-0190b8866c686c88.rmeta: crates/bench/src/bin/tab6_offline_movie.rs

crates/bench/src/bin/tab6_offline_movie.rs:
