/root/repo/target/debug/deps/vaq_core-91743a53e2e39741.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/offline/mod.rs crates/core/src/offline/baselines.rs crates/core/src/offline/candidates.rs crates/core/src/offline/ingest.rs crates/core/src/offline/repository.rs crates/core/src/offline/rvaq.rs crates/core/src/offline/scoring.rs crates/core/src/offline/tbclip.rs crates/core/src/online/mod.rs crates/core/src/online/engine.rs crates/core/src/online/indicator.rs crates/core/src/online/multi.rs

/root/repo/target/debug/deps/libvaq_core-91743a53e2e39741.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/offline/mod.rs crates/core/src/offline/baselines.rs crates/core/src/offline/candidates.rs crates/core/src/offline/ingest.rs crates/core/src/offline/repository.rs crates/core/src/offline/rvaq.rs crates/core/src/offline/scoring.rs crates/core/src/offline/tbclip.rs crates/core/src/online/mod.rs crates/core/src/online/engine.rs crates/core/src/online/indicator.rs crates/core/src/online/multi.rs

/root/repo/target/debug/deps/libvaq_core-91743a53e2e39741.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/offline/mod.rs crates/core/src/offline/baselines.rs crates/core/src/offline/candidates.rs crates/core/src/offline/ingest.rs crates/core/src/offline/repository.rs crates/core/src/offline/rvaq.rs crates/core/src/offline/scoring.rs crates/core/src/offline/tbclip.rs crates/core/src/online/mod.rs crates/core/src/online/engine.rs crates/core/src/online/indicator.rs crates/core/src/online/multi.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/offline/mod.rs:
crates/core/src/offline/baselines.rs:
crates/core/src/offline/candidates.rs:
crates/core/src/offline/ingest.rs:
crates/core/src/offline/repository.rs:
crates/core/src/offline/rvaq.rs:
crates/core/src/offline/scoring.rs:
crates/core/src/offline/tbclip.rs:
crates/core/src/online/mod.rs:
crates/core/src/online/engine.rs:
crates/core/src/online/indicator.rs:
crates/core/src/online/multi.rs:
