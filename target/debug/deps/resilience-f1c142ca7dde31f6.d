/root/repo/target/debug/deps/resilience-f1c142ca7dde31f6.d: tests/resilience.rs

/root/repo/target/debug/deps/resilience-f1c142ca7dde31f6: tests/resilience.rs

tests/resilience.rs:
