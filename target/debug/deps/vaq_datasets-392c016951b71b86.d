/root/repo/target/debug/deps/vaq_datasets-392c016951b71b86.d: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

/root/repo/target/debug/deps/libvaq_datasets-392c016951b71b86.rlib: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

/root/repo/target/debug/deps/libvaq_datasets-392c016951b71b86.rmeta: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

crates/datasets/src/lib.rs:
crates/datasets/src/drift.rs:
crates/datasets/src/load.rs:
crates/datasets/src/movies.rs:
crates/datasets/src/youtube.rs:
