/root/repo/target/debug/deps/vaq_metrics-ea87b0cfc22611a2.d: crates/metrics/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_metrics-ea87b0cfc22611a2.rmeta: crates/metrics/src/lib.rs Cargo.toml

crates/metrics/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
