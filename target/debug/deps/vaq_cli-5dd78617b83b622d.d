/root/repo/target/debug/deps/vaq_cli-5dd78617b83b622d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libvaq_cli-5dd78617b83b622d.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
