/root/repo/target/debug/deps/parking_lot-5fe691e92b00e483.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-5fe691e92b00e483.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-5fe691e92b00e483.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
