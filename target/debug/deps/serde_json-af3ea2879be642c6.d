/root/repo/target/debug/deps/serde_json-af3ea2879be642c6.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-af3ea2879be642c6.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-af3ea2879be642c6.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
