/root/repo/target/debug/deps/vaq-84579e132d3d6e86.d: src/lib.rs

/root/repo/target/debug/deps/libvaq-84579e132d3d6e86.rlib: src/lib.rs

/root/repo/target/debug/deps/libvaq-84579e132d3d6e86.rmeta: src/lib.rs

src/lib.rs:
