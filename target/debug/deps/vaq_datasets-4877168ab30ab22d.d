/root/repo/target/debug/deps/vaq_datasets-4877168ab30ab22d.d: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

/root/repo/target/debug/deps/libvaq_datasets-4877168ab30ab22d.rmeta: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

crates/datasets/src/lib.rs:
crates/datasets/src/drift.rs:
crates/datasets/src/load.rs:
crates/datasets/src/movies.rs:
crates/datasets/src/youtube.rs:
