/root/repo/target/debug/deps/vaq_loom-77c593696c6c95b1.d: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/debug/deps/libvaq_loom-77c593696c6c95b1.rlib: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/debug/deps/libvaq_loom-77c593696c6c95b1.rmeta: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

crates/loom/src/lib.rs:
crates/loom/src/sched.rs:
crates/loom/src/sync.rs:
crates/loom/src/thread.rs:
