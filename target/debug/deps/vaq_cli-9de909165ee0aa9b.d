/root/repo/target/debug/deps/vaq_cli-9de909165ee0aa9b.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libvaq_cli-9de909165ee0aa9b.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
