/root/repo/target/debug/deps/vaq_trace-014aad15c510cb5d.d: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libvaq_trace-014aad15c510cb5d.rlib: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libvaq_trace-014aad15c510cb5d.rmeta: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/clock.rs:
crates/trace/src/metrics.rs:
crates/trace/src/record.rs:
crates/trace/src/sink.rs:
