/root/repo/target/debug/deps/vaq_metrics-02d43b2fd633440c.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libvaq_metrics-02d43b2fd633440c.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
