/root/repo/target/debug/deps/serde-96b5f4392bae55cf.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-96b5f4392bae55cf.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-96b5f4392bae55cf.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
