/root/repo/target/debug/deps/ablation_update_policy-c43558aa9bdde23b.d: crates/bench/src/bin/ablation_update_policy.rs

/root/repo/target/debug/deps/libablation_update_policy-c43558aa9bdde23b.rmeta: crates/bench/src/bin/ablation_update_policy.rs

crates/bench/src/bin/ablation_update_policy.rs:
