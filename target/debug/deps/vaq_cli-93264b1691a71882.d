/root/repo/target/debug/deps/vaq_cli-93264b1691a71882.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/vaq_cli-93264b1691a71882: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
