/root/repo/target/debug/deps/serde_json-037dbd28c20fe57d.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-037dbd28c20fe57d.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
