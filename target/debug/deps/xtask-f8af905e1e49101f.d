/root/repo/target/debug/deps/xtask-f8af905e1e49101f.d: crates/xtask/src/lib.rs crates/xtask/src/analyze.rs crates/xtask/src/api_lock.rs crates/xtask/src/casts.rs crates/xtask/src/graph.rs crates/xtask/src/items.rs crates/xtask/src/lexer.rs crates/xtask/src/rules.rs crates/xtask/src/workspace.rs

/root/repo/target/debug/deps/xtask-f8af905e1e49101f: crates/xtask/src/lib.rs crates/xtask/src/analyze.rs crates/xtask/src/api_lock.rs crates/xtask/src/casts.rs crates/xtask/src/graph.rs crates/xtask/src/items.rs crates/xtask/src/lexer.rs crates/xtask/src/rules.rs crates/xtask/src/workspace.rs

crates/xtask/src/lib.rs:
crates/xtask/src/analyze.rs:
crates/xtask/src/api_lock.rs:
crates/xtask/src/casts.rs:
crates/xtask/src/graph.rs:
crates/xtask/src/items.rs:
crates/xtask/src/lexer.rs:
crates/xtask/src/rules.rs:
crates/xtask/src/workspace.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
