/root/repo/target/debug/deps/rand-065669a135563b87.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-065669a135563b87.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-065669a135563b87.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
