/root/repo/target/debug/deps/tab8_speedup-b7dfefebc7b68914.d: crates/bench/src/bin/tab8_speedup.rs

/root/repo/target/debug/deps/libtab8_speedup-b7dfefebc7b68914.rmeta: crates/bench/src/bin/tab8_speedup.rs

crates/bench/src/bin/tab8_speedup.rs:
