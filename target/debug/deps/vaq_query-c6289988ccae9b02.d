/root/repo/target/debug/deps/vaq_query-c6289988ccae9b02.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

/root/repo/target/debug/deps/libvaq_query-c6289988ccae9b02.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
