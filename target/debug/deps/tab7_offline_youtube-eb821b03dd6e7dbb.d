/root/repo/target/debug/deps/tab7_offline_youtube-eb821b03dd6e7dbb.d: crates/bench/src/bin/tab7_offline_youtube.rs

/root/repo/target/debug/deps/libtab7_offline_youtube-eb821b03dd6e7dbb.rmeta: crates/bench/src/bin/tab7_offline_youtube.rs

crates/bench/src/bin/tab7_offline_youtube.rs:
