/root/repo/target/debug/deps/tab_runtime_decomposition-19fa38c52d027481.d: crates/bench/src/bin/tab_runtime_decomposition.rs

/root/repo/target/debug/deps/libtab_runtime_decomposition-19fa38c52d027481.rmeta: crates/bench/src/bin/tab_runtime_decomposition.rs

crates/bench/src/bin/tab_runtime_decomposition.rs:
