/root/repo/target/debug/deps/vaq_storage-83fa41ece8745095.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

/root/repo/target/debug/deps/libvaq_storage-83fa41ece8745095.rlib: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

/root/repo/target/debug/deps/libvaq_storage-83fa41ece8745095.rmeta: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/cost.rs:
crates/storage/src/file.rs:
crates/storage/src/fsck.rs:
crates/storage/src/table.rs:
