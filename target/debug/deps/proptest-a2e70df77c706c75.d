/root/repo/target/debug/deps/proptest-a2e70df77c706c75.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a2e70df77c706c75.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
