/root/repo/target/debug/deps/vaq_scanstats-f2ce394907ad05fc.d: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

/root/repo/target/debug/deps/libvaq_scanstats-f2ce394907ad05fc.rmeta: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

crates/scanstats/src/lib.rs:
crates/scanstats/src/binomial.rs:
crates/scanstats/src/critical.rs:
crates/scanstats/src/exact.rs:
crates/scanstats/src/kernel.rs:
crates/scanstats/src/markov.rs:
crates/scanstats/src/naus.rs:
crates/scanstats/src/sync.rs:
