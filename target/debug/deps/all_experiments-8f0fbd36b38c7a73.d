/root/repo/target/debug/deps/all_experiments-8f0fbd36b38c7a73.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-8f0fbd36b38c7a73.rmeta: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
