/root/repo/target/debug/deps/proptest-9d42bf19c3dc9ce1.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9d42bf19c3dc9ce1.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9d42bf19c3dc9ce1.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
