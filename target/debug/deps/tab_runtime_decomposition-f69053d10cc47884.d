/root/repo/target/debug/deps/tab_runtime_decomposition-f69053d10cc47884.d: crates/bench/src/bin/tab_runtime_decomposition.rs

/root/repo/target/debug/deps/libtab_runtime_decomposition-f69053d10cc47884.rmeta: crates/bench/src/bin/tab_runtime_decomposition.rs

crates/bench/src/bin/tab_runtime_decomposition.rs:
