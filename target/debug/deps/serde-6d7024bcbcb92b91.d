/root/repo/target/debug/deps/serde-6d7024bcbcb92b91.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6d7024bcbcb92b91.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6d7024bcbcb92b91.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
