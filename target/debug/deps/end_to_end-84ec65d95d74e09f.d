/root/repo/target/debug/deps/end_to_end-84ec65d95d74e09f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-84ec65d95d74e09f: tests/end_to_end.rs

tests/end_to_end.rs:
