/root/repo/target/debug/deps/checkpoint_roundtrip-3c25de0019ea6855.d: tests/checkpoint_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_roundtrip-3c25de0019ea6855.rmeta: tests/checkpoint_roundtrip.rs Cargo.toml

tests/checkpoint_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
