/root/repo/target/debug/deps/vaq_detect-7178bef7dada96f7.d: crates/detect/src/lib.rs crates/detect/src/api.rs crates/detect/src/cache.rs crates/detect/src/endtoend.rs crates/detect/src/fault.rs crates/detect/src/latency.rs crates/detect/src/noise.rs crates/detect/src/profiles.rs crates/detect/src/sim.rs crates/detect/src/sync.rs crates/detect/src/telemetry.rs crates/detect/src/tracker.rs

/root/repo/target/debug/deps/libvaq_detect-7178bef7dada96f7.rlib: crates/detect/src/lib.rs crates/detect/src/api.rs crates/detect/src/cache.rs crates/detect/src/endtoend.rs crates/detect/src/fault.rs crates/detect/src/latency.rs crates/detect/src/noise.rs crates/detect/src/profiles.rs crates/detect/src/sim.rs crates/detect/src/sync.rs crates/detect/src/telemetry.rs crates/detect/src/tracker.rs

/root/repo/target/debug/deps/libvaq_detect-7178bef7dada96f7.rmeta: crates/detect/src/lib.rs crates/detect/src/api.rs crates/detect/src/cache.rs crates/detect/src/endtoend.rs crates/detect/src/fault.rs crates/detect/src/latency.rs crates/detect/src/noise.rs crates/detect/src/profiles.rs crates/detect/src/sim.rs crates/detect/src/sync.rs crates/detect/src/telemetry.rs crates/detect/src/tracker.rs

crates/detect/src/lib.rs:
crates/detect/src/api.rs:
crates/detect/src/cache.rs:
crates/detect/src/endtoend.rs:
crates/detect/src/fault.rs:
crates/detect/src/latency.rs:
crates/detect/src/noise.rs:
crates/detect/src/profiles.rs:
crates/detect/src/sim.rs:
crates/detect/src/sync.rs:
crates/detect/src/telemetry.rs:
crates/detect/src/tracker.rs:
