/root/repo/target/debug/deps/parking_lot-6d0459f7e4a1564b.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-6d0459f7e4a1564b.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
