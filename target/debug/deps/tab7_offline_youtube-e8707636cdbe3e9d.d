/root/repo/target/debug/deps/tab7_offline_youtube-e8707636cdbe3e9d.d: crates/bench/src/bin/tab7_offline_youtube.rs

/root/repo/target/debug/deps/libtab7_offline_youtube-e8707636cdbe3e9d.rmeta: crates/bench/src/bin/tab7_offline_youtube.rs

crates/bench/src/bin/tab7_offline_youtube.rs:
