/root/repo/target/debug/deps/trace_overhead-ca1caf1c306cc747.d: tests/trace_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_overhead-ca1caf1c306cc747.rmeta: tests/trace_overhead.rs Cargo.toml

tests/trace_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
