/root/repo/target/debug/deps/vaq_scanstats-3478a38f0c035e2b.d: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_scanstats-3478a38f0c035e2b.rmeta: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs Cargo.toml

crates/scanstats/src/lib.rs:
crates/scanstats/src/binomial.rs:
crates/scanstats/src/critical.rs:
crates/scanstats/src/exact.rs:
crates/scanstats/src/kernel.rs:
crates/scanstats/src/markov.rs:
crates/scanstats/src/naus.rs:
crates/scanstats/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
