/root/repo/target/debug/deps/vaq_metrics-ac4946defbc9b2b7.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libvaq_metrics-ac4946defbc9b2b7.rlib: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libvaq_metrics-ac4946defbc9b2b7.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
