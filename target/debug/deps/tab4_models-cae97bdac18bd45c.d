/root/repo/target/debug/deps/tab4_models-cae97bdac18bd45c.d: crates/bench/src/bin/tab4_models.rs

/root/repo/target/debug/deps/libtab4_models-cae97bdac18bd45c.rmeta: crates/bench/src/bin/tab4_models.rs

crates/bench/src/bin/tab4_models.rs:
