/root/repo/target/debug/deps/tab_rvaq_accuracy-805cb1a8414814b3.d: crates/bench/src/bin/tab_rvaq_accuracy.rs

/root/repo/target/debug/deps/libtab_rvaq_accuracy-805cb1a8414814b3.rmeta: crates/bench/src/bin/tab_rvaq_accuracy.rs

crates/bench/src/bin/tab_rvaq_accuracy.rs:
