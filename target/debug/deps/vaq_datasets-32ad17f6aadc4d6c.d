/root/repo/target/debug/deps/vaq_datasets-32ad17f6aadc4d6c.d: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_datasets-32ad17f6aadc4d6c.rmeta: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/drift.rs:
crates/datasets/src/load.rs:
crates/datasets/src/movies.rs:
crates/datasets/src/youtube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
