/root/repo/target/debug/deps/vaq_cli-fea1402790969411.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libvaq_cli-fea1402790969411.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libvaq_cli-fea1402790969411.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
