/root/repo/target/debug/deps/golden_trace-28d438f71f1ce6cd.d: tests/golden_trace.rs tests/fixtures/traces/ingest_two_clips.tree.json tests/fixtures/traces/ingest_two_clips.summary.json Cargo.toml

/root/repo/target/debug/deps/libgolden_trace-28d438f71f1ce6cd.rmeta: tests/golden_trace.rs tests/fixtures/traces/ingest_two_clips.tree.json tests/fixtures/traces/ingest_two_clips.summary.json Cargo.toml

tests/golden_trace.rs:
tests/fixtures/traces/ingest_two_clips.tree.json:
tests/fixtures/traces/ingest_two_clips.summary.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
