/root/repo/target/debug/deps/serde_derive-5603a86f399b6230.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-5603a86f399b6230.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
