/root/repo/target/debug/deps/vaq_loom-026d86dcedd5e8e6.d: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_loom-026d86dcedd5e8e6.rmeta: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs Cargo.toml

crates/loom/src/lib.rs:
crates/loom/src/sched.rs:
crates/loom/src/sync.rs:
crates/loom/src/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
