/root/repo/target/debug/deps/resilience-5fa4b5be7b5e5ecf.d: tests/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-5fa4b5be7b5e5ecf.rmeta: tests/resilience.rs Cargo.toml

tests/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
