/root/repo/target/debug/deps/vaq_cli-be524dabf33f099e.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libvaq_cli-be524dabf33f099e.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
