/root/repo/target/debug/deps/vaq_trace-8ac0006e061bc52d.d: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/vaq_trace-8ac0006e061bc52d: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/clock.rs:
crates/trace/src/metrics.rs:
crates/trace/src/record.rs:
crates/trace/src/sink.rs:
