/root/repo/target/debug/deps/fig2_background_prob-6eaa369c1048286f.d: crates/bench/src/bin/fig2_background_prob.rs

/root/repo/target/debug/deps/libfig2_background_prob-6eaa369c1048286f.rmeta: crates/bench/src/bin/fig2_background_prob.rs

crates/bench/src/bin/fig2_background_prob.rs:
