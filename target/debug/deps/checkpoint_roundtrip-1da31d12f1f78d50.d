/root/repo/target/debug/deps/checkpoint_roundtrip-1da31d12f1f78d50.d: tests/checkpoint_roundtrip.rs

/root/repo/target/debug/deps/checkpoint_roundtrip-1da31d12f1f78d50: tests/checkpoint_roundtrip.rs

tests/checkpoint_roundtrip.rs:
