/root/repo/target/debug/deps/xtask-691160e5deaa730e.d: crates/xtask/src/lib.rs crates/xtask/src/analyze.rs crates/xtask/src/api_lock.rs crates/xtask/src/casts.rs crates/xtask/src/graph.rs crates/xtask/src/items.rs crates/xtask/src/lexer.rs crates/xtask/src/rules.rs crates/xtask/src/workspace.rs

/root/repo/target/debug/deps/libxtask-691160e5deaa730e.rmeta: crates/xtask/src/lib.rs crates/xtask/src/analyze.rs crates/xtask/src/api_lock.rs crates/xtask/src/casts.rs crates/xtask/src/graph.rs crates/xtask/src/items.rs crates/xtask/src/lexer.rs crates/xtask/src/rules.rs crates/xtask/src/workspace.rs

crates/xtask/src/lib.rs:
crates/xtask/src/analyze.rs:
crates/xtask/src/api_lock.rs:
crates/xtask/src/casts.rs:
crates/xtask/src/graph.rs:
crates/xtask/src/items.rs:
crates/xtask/src/lexer.rs:
crates/xtask/src/rules.rs:
crates/xtask/src/workspace.rs:
