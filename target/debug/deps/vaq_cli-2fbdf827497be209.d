/root/repo/target/debug/deps/vaq_cli-2fbdf827497be209.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libvaq_cli-2fbdf827497be209.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
