/root/repo/target/debug/deps/xtask-252b48385f7c36eb.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-252b48385f7c36eb.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
