/root/repo/target/debug/deps/tab5_noise-203cb7e92f9add0c.d: crates/bench/src/bin/tab5_noise.rs

/root/repo/target/debug/deps/libtab5_noise-203cb7e92f9add0c.rmeta: crates/bench/src/bin/tab5_noise.rs

crates/bench/src/bin/tab5_noise.rs:
