/root/repo/target/debug/deps/vaq_cli-b24e580116022f57.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_cli-b24e580116022f57.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
