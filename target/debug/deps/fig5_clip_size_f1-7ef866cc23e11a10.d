/root/repo/target/debug/deps/fig5_clip_size_f1-7ef866cc23e11a10.d: crates/bench/src/bin/fig5_clip_size_f1.rs

/root/repo/target/debug/deps/libfig5_clip_size_f1-7ef866cc23e11a10.rmeta: crates/bench/src/bin/fig5_clip_size_f1.rs

crates/bench/src/bin/fig5_clip_size_f1.rs:
