/root/repo/target/debug/deps/golden_trace-8b2fbe50519b61fc.d: tests/golden_trace.rs tests/fixtures/traces/ingest_two_clips.tree.json tests/fixtures/traces/ingest_two_clips.summary.json

/root/repo/target/debug/deps/golden_trace-8b2fbe50519b61fc: tests/golden_trace.rs tests/fixtures/traces/ingest_two_clips.tree.json tests/fixtures/traces/ingest_two_clips.summary.json

tests/golden_trace.rs:
tests/fixtures/traces/ingest_two_clips.tree.json:
tests/fixtures/traces/ingest_two_clips.summary.json:
