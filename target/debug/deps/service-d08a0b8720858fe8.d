/root/repo/target/debug/deps/service-d08a0b8720858fe8.d: tests/service.rs

/root/repo/target/debug/deps/service-d08a0b8720858fe8: tests/service.rs

tests/service.rs:
