/root/repo/target/debug/deps/tab8_speedup-26ae890b6b3cb56e.d: crates/bench/src/bin/tab8_speedup.rs

/root/repo/target/debug/deps/libtab8_speedup-26ae890b6b3cb56e.rmeta: crates/bench/src/bin/tab8_speedup.rs

crates/bench/src/bin/tab8_speedup.rs:
