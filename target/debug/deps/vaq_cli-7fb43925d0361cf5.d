/root/repo/target/debug/deps/vaq_cli-7fb43925d0361cf5.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/vaq_cli-7fb43925d0361cf5: crates/cli/src/main.rs

crates/cli/src/main.rs:
