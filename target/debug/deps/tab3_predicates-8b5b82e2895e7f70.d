/root/repo/target/debug/deps/tab3_predicates-8b5b82e2895e7f70.d: crates/bench/src/bin/tab3_predicates.rs

/root/repo/target/debug/deps/libtab3_predicates-8b5b82e2895e7f70.rmeta: crates/bench/src/bin/tab3_predicates.rs

crates/bench/src/bin/tab3_predicates.rs:
