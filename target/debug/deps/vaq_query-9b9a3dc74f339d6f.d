/root/repo/target/debug/deps/vaq_query-9b9a3dc74f339d6f.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

/root/repo/target/debug/deps/libvaq_query-9b9a3dc74f339d6f.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

/root/repo/target/debug/deps/libvaq_query-9b9a3dc74f339d6f.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
