/root/repo/target/debug/deps/vaq_types-c10daa8ee203c446.d: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libvaq_types-c10daa8ee203c446.rmeta: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/conv.rs:
crates/types/src/error.rs:
crates/types/src/geometry.rs:
crates/types/src/ids.rs:
crates/types/src/interval.rs:
crates/types/src/query.rs:
crates/types/src/timing.rs:
crates/types/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-A__CLIPPY_HACKERY__clippy::while_immutable_condition__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
