/root/repo/target/debug/deps/vaq_bench-6d9615d1c9afe229.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/offline_exp.rs crates/bench/src/experiments/online_exp.rs crates/bench/src/fmt.rs crates/bench/src/models.rs crates/bench/src/offline.rs crates/bench/src/runner.rs crates/bench/src/scale.rs

/root/repo/target/debug/deps/libvaq_bench-6d9615d1c9afe229.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/offline_exp.rs crates/bench/src/experiments/online_exp.rs crates/bench/src/fmt.rs crates/bench/src/models.rs crates/bench/src/offline.rs crates/bench/src/runner.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/offline_exp.rs:
crates/bench/src/experiments/online_exp.rs:
crates/bench/src/fmt.rs:
crates/bench/src/models.rs:
crates/bench/src/offline.rs:
crates/bench/src/runner.rs:
crates/bench/src/scale.rs:
