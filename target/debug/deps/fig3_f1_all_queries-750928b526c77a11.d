/root/repo/target/debug/deps/fig3_f1_all_queries-750928b526c77a11.d: crates/bench/src/bin/fig3_f1_all_queries.rs

/root/repo/target/debug/deps/libfig3_f1_all_queries-750928b526c77a11.rmeta: crates/bench/src/bin/fig3_f1_all_queries.rs

crates/bench/src/bin/fig3_f1_all_queries.rs:
