/root/repo/target/debug/deps/serde-dedcb65c2a66b384.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-dedcb65c2a66b384.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
