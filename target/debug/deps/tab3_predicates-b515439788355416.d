/root/repo/target/debug/deps/tab3_predicates-b515439788355416.d: crates/bench/src/bin/tab3_predicates.rs

/root/repo/target/debug/deps/libtab3_predicates-b515439788355416.rmeta: crates/bench/src/bin/tab3_predicates.rs

crates/bench/src/bin/tab3_predicates.rs:
