/root/repo/target/release/deps/vaq_trace-38da619351b53ffc.d: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libvaq_trace-38da619351b53ffc.rlib: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libvaq_trace-38da619351b53ffc.rmeta: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/clock.rs:
crates/trace/src/metrics.rs:
crates/trace/src/record.rs:
crates/trace/src/sink.rs:
