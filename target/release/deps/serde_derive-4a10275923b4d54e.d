/root/repo/target/release/deps/serde_derive-4a10275923b4d54e.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4a10275923b4d54e.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
