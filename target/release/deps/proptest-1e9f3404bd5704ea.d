/root/repo/target/release/deps/proptest-1e9f3404bd5704ea.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1e9f3404bd5704ea.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1e9f3404bd5704ea.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
