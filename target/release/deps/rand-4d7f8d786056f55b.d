/root/repo/target/release/deps/rand-4d7f8d786056f55b.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4d7f8d786056f55b.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4d7f8d786056f55b.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
