/root/repo/target/release/deps/serde_derive-2124ade1d2da8d17.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-2124ade1d2da8d17.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
