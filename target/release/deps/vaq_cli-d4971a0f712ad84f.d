/root/repo/target/release/deps/vaq_cli-d4971a0f712ad84f.d: crates/cli/src/main.rs

/root/repo/target/release/deps/vaq_cli-d4971a0f712ad84f: crates/cli/src/main.rs

crates/cli/src/main.rs:
