/root/repo/target/release/deps/vaq_metrics-c2e82365d2243a9a.d: crates/metrics/src/lib.rs

/root/repo/target/release/deps/libvaq_metrics-c2e82365d2243a9a.rlib: crates/metrics/src/lib.rs

/root/repo/target/release/deps/libvaq_metrics-c2e82365d2243a9a.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
