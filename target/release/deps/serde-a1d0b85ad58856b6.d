/root/repo/target/release/deps/serde-a1d0b85ad58856b6.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a1d0b85ad58856b6.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a1d0b85ad58856b6.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
