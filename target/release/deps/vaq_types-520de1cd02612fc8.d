/root/repo/target/release/deps/vaq_types-520de1cd02612fc8.d: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

/root/repo/target/release/deps/libvaq_types-520de1cd02612fc8.rlib: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

/root/repo/target/release/deps/libvaq_types-520de1cd02612fc8.rmeta: crates/types/src/lib.rs crates/types/src/conv.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/ids.rs crates/types/src/interval.rs crates/types/src/query.rs crates/types/src/timing.rs crates/types/src/vocab.rs

crates/types/src/lib.rs:
crates/types/src/conv.rs:
crates/types/src/error.rs:
crates/types/src/geometry.rs:
crates/types/src/ids.rs:
crates/types/src/interval.rs:
crates/types/src/query.rs:
crates/types/src/timing.rs:
crates/types/src/vocab.rs:
