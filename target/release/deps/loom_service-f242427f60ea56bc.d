/root/repo/target/release/deps/loom_service-f242427f60ea56bc.d: crates/core/tests/loom_service.rs

/root/repo/target/release/deps/loom_service-f242427f60ea56bc: crates/core/tests/loom_service.rs

crates/core/tests/loom_service.rs:
