/root/repo/target/release/deps/vaq_datasets-dca134b5489d1750.d: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

/root/repo/target/release/deps/libvaq_datasets-dca134b5489d1750.rlib: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

/root/repo/target/release/deps/libvaq_datasets-dca134b5489d1750.rmeta: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

crates/datasets/src/lib.rs:
crates/datasets/src/drift.rs:
crates/datasets/src/load.rs:
crates/datasets/src/movies.rs:
crates/datasets/src/youtube.rs:
