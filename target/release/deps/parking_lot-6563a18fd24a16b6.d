/root/repo/target/release/deps/parking_lot-6563a18fd24a16b6.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6563a18fd24a16b6.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6563a18fd24a16b6.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
