/root/repo/target/release/deps/vaq_query-9b116c89d9011f1b.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

/root/repo/target/release/deps/libvaq_query-9b116c89d9011f1b.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

/root/repo/target/release/deps/libvaq_query-9b116c89d9011f1b.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
