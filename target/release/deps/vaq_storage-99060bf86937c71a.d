/root/repo/target/release/deps/vaq_storage-99060bf86937c71a.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

/root/repo/target/release/deps/libvaq_storage-99060bf86937c71a.rlib: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

/root/repo/target/release/deps/libvaq_storage-99060bf86937c71a.rmeta: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/cost.rs:
crates/storage/src/file.rs:
crates/storage/src/fsck.rs:
crates/storage/src/table.rs:
