/root/repo/target/release/deps/serde_json-a2b6b5c7f5edb30b.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a2b6b5c7f5edb30b.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a2b6b5c7f5edb30b.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
