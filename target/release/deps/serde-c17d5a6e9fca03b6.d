/root/repo/target/release/deps/serde-c17d5a6e9fca03b6.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c17d5a6e9fca03b6.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c17d5a6e9fca03b6.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
