/root/repo/target/release/deps/parking_lot-965f69f9eb29cee0.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-965f69f9eb29cee0.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-965f69f9eb29cee0.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
