/root/repo/target/release/deps/vaq_detect-1c07db7dfa0f668e.d: crates/detect/src/lib.rs crates/detect/src/api.rs crates/detect/src/cache.rs crates/detect/src/endtoend.rs crates/detect/src/fault.rs crates/detect/src/latency.rs crates/detect/src/noise.rs crates/detect/src/profiles.rs crates/detect/src/sim.rs crates/detect/src/sync.rs crates/detect/src/telemetry.rs crates/detect/src/tracker.rs

/root/repo/target/release/deps/libvaq_detect-1c07db7dfa0f668e.rlib: crates/detect/src/lib.rs crates/detect/src/api.rs crates/detect/src/cache.rs crates/detect/src/endtoend.rs crates/detect/src/fault.rs crates/detect/src/latency.rs crates/detect/src/noise.rs crates/detect/src/profiles.rs crates/detect/src/sim.rs crates/detect/src/sync.rs crates/detect/src/telemetry.rs crates/detect/src/tracker.rs

/root/repo/target/release/deps/libvaq_detect-1c07db7dfa0f668e.rmeta: crates/detect/src/lib.rs crates/detect/src/api.rs crates/detect/src/cache.rs crates/detect/src/endtoend.rs crates/detect/src/fault.rs crates/detect/src/latency.rs crates/detect/src/noise.rs crates/detect/src/profiles.rs crates/detect/src/sim.rs crates/detect/src/sync.rs crates/detect/src/telemetry.rs crates/detect/src/tracker.rs

crates/detect/src/lib.rs:
crates/detect/src/api.rs:
crates/detect/src/cache.rs:
crates/detect/src/endtoend.rs:
crates/detect/src/fault.rs:
crates/detect/src/latency.rs:
crates/detect/src/noise.rs:
crates/detect/src/profiles.rs:
crates/detect/src/sim.rs:
crates/detect/src/sync.rs:
crates/detect/src/telemetry.rs:
crates/detect/src/tracker.rs:
