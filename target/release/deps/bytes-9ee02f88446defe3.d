/root/repo/target/release/deps/bytes-9ee02f88446defe3.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-9ee02f88446defe3.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-9ee02f88446defe3.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
