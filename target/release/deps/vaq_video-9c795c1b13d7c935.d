/root/repo/target/release/deps/vaq_video-9c795c1b13d7c935.d: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

/root/repo/target/release/deps/libvaq_video-9c795c1b13d7c935.rlib: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

/root/repo/target/release/deps/libvaq_video-9c795c1b13d7c935.rmeta: crates/video/src/lib.rs crates/video/src/frame.rs crates/video/src/gen.rs crates/video/src/persist.rs crates/video/src/script.rs crates/video/src/span.rs

crates/video/src/lib.rs:
crates/video/src/frame.rs:
crates/video/src/gen.rs:
crates/video/src/persist.rs:
crates/video/src/script.rs:
crates/video/src/span.rs:
