/root/repo/target/release/deps/vaq_storage-d0a4cbbfd6b8b2d0.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

/root/repo/target/release/deps/libvaq_storage-d0a4cbbfd6b8b2d0.rlib: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

/root/repo/target/release/deps/libvaq_storage-d0a4cbbfd6b8b2d0.rmeta: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/cost.rs crates/storage/src/file.rs crates/storage/src/fsck.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/cost.rs:
crates/storage/src/file.rs:
crates/storage/src/fsck.rs:
crates/storage/src/table.rs:
