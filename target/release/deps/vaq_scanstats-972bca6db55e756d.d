/root/repo/target/release/deps/vaq_scanstats-972bca6db55e756d.d: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

/root/repo/target/release/deps/libvaq_scanstats-972bca6db55e756d.rlib: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

/root/repo/target/release/deps/libvaq_scanstats-972bca6db55e756d.rmeta: crates/scanstats/src/lib.rs crates/scanstats/src/binomial.rs crates/scanstats/src/critical.rs crates/scanstats/src/exact.rs crates/scanstats/src/kernel.rs crates/scanstats/src/markov.rs crates/scanstats/src/naus.rs crates/scanstats/src/sync.rs

crates/scanstats/src/lib.rs:
crates/scanstats/src/binomial.rs:
crates/scanstats/src/critical.rs:
crates/scanstats/src/exact.rs:
crates/scanstats/src/kernel.rs:
crates/scanstats/src/markov.rs:
crates/scanstats/src/naus.rs:
crates/scanstats/src/sync.rs:
