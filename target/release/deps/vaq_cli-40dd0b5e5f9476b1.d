/root/repo/target/release/deps/vaq_cli-40dd0b5e5f9476b1.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libvaq_cli-40dd0b5e5f9476b1.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libvaq_cli-40dd0b5e5f9476b1.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
