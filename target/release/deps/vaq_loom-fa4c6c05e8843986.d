/root/repo/target/release/deps/vaq_loom-fa4c6c05e8843986.d: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/release/deps/libvaq_loom-fa4c6c05e8843986.rlib: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/release/deps/libvaq_loom-fa4c6c05e8843986.rmeta: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

crates/loom/src/lib.rs:
crates/loom/src/sched.rs:
crates/loom/src/sync.rs:
crates/loom/src/thread.rs:
