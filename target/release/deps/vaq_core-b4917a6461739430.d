/root/repo/target/release/deps/vaq_core-b4917a6461739430.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/offline/mod.rs crates/core/src/offline/baselines.rs crates/core/src/offline/candidates.rs crates/core/src/offline/ingest.rs crates/core/src/offline/repository.rs crates/core/src/offline/rvaq.rs crates/core/src/offline/scoring.rs crates/core/src/offline/tbclip.rs crates/core/src/online/mod.rs crates/core/src/online/engine.rs crates/core/src/online/indicator.rs crates/core/src/online/multi.rs crates/core/src/online/service/mod.rs crates/core/src/online/service/queue.rs crates/core/src/online/service/registry.rs crates/core/src/online/service/service.rs crates/core/src/online/service/sync.rs crates/core/src/online/service/tenant.rs

/root/repo/target/release/deps/libvaq_core-b4917a6461739430.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/offline/mod.rs crates/core/src/offline/baselines.rs crates/core/src/offline/candidates.rs crates/core/src/offline/ingest.rs crates/core/src/offline/repository.rs crates/core/src/offline/rvaq.rs crates/core/src/offline/scoring.rs crates/core/src/offline/tbclip.rs crates/core/src/online/mod.rs crates/core/src/online/engine.rs crates/core/src/online/indicator.rs crates/core/src/online/multi.rs crates/core/src/online/service/mod.rs crates/core/src/online/service/queue.rs crates/core/src/online/service/registry.rs crates/core/src/online/service/service.rs crates/core/src/online/service/sync.rs crates/core/src/online/service/tenant.rs

/root/repo/target/release/deps/libvaq_core-b4917a6461739430.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/offline/mod.rs crates/core/src/offline/baselines.rs crates/core/src/offline/candidates.rs crates/core/src/offline/ingest.rs crates/core/src/offline/repository.rs crates/core/src/offline/rvaq.rs crates/core/src/offline/scoring.rs crates/core/src/offline/tbclip.rs crates/core/src/online/mod.rs crates/core/src/online/engine.rs crates/core/src/online/indicator.rs crates/core/src/online/multi.rs crates/core/src/online/service/mod.rs crates/core/src/online/service/queue.rs crates/core/src/online/service/registry.rs crates/core/src/online/service/service.rs crates/core/src/online/service/sync.rs crates/core/src/online/service/tenant.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/offline/mod.rs:
crates/core/src/offline/baselines.rs:
crates/core/src/offline/candidates.rs:
crates/core/src/offline/ingest.rs:
crates/core/src/offline/repository.rs:
crates/core/src/offline/rvaq.rs:
crates/core/src/offline/scoring.rs:
crates/core/src/offline/tbclip.rs:
crates/core/src/online/mod.rs:
crates/core/src/online/engine.rs:
crates/core/src/online/indicator.rs:
crates/core/src/online/multi.rs:
crates/core/src/online/service/mod.rs:
crates/core/src/online/service/queue.rs:
crates/core/src/online/service/registry.rs:
crates/core/src/online/service/service.rs:
crates/core/src/online/service/sync.rs:
crates/core/src/online/service/tenant.rs:
