/root/repo/target/release/deps/vaq_trace-ec178dab81e08cba.d: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libvaq_trace-ec178dab81e08cba.rlib: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libvaq_trace-ec178dab81e08cba.rmeta: crates/trace/src/lib.rs crates/trace/src/clock.rs crates/trace/src/metrics.rs crates/trace/src/record.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/clock.rs:
crates/trace/src/metrics.rs:
crates/trace/src/record.rs:
crates/trace/src/sink.rs:
