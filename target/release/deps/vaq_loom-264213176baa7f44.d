/root/repo/target/release/deps/vaq_loom-264213176baa7f44.d: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/release/deps/libvaq_loom-264213176baa7f44.rlib: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

/root/repo/target/release/deps/libvaq_loom-264213176baa7f44.rmeta: crates/loom/src/lib.rs crates/loom/src/sched.rs crates/loom/src/sync.rs crates/loom/src/thread.rs

crates/loom/src/lib.rs:
crates/loom/src/sched.rs:
crates/loom/src/sync.rs:
crates/loom/src/thread.rs:
