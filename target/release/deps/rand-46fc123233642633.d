/root/repo/target/release/deps/rand-46fc123233642633.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-46fc123233642633.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-46fc123233642633.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
