/root/repo/target/release/deps/serde_json-8ea978202feaff40.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-8ea978202feaff40.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-8ea978202feaff40.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
