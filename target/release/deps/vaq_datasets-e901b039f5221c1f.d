/root/repo/target/release/deps/vaq_datasets-e901b039f5221c1f.d: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

/root/repo/target/release/deps/libvaq_datasets-e901b039f5221c1f.rlib: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

/root/repo/target/release/deps/libvaq_datasets-e901b039f5221c1f.rmeta: crates/datasets/src/lib.rs crates/datasets/src/drift.rs crates/datasets/src/load.rs crates/datasets/src/movies.rs crates/datasets/src/youtube.rs

crates/datasets/src/lib.rs:
crates/datasets/src/drift.rs:
crates/datasets/src/load.rs:
crates/datasets/src/movies.rs:
crates/datasets/src/youtube.rs:
