/root/repo/target/release/deps/bytes-5292b072bb72effb.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-5292b072bb72effb.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-5292b072bb72effb.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
