//! The offline case end to end: ingest a movie once (clip score tables +
//! individual sequences, persisted as an on-disk catalog), then answer
//! ad-hoc top-K queries with RVAQ and compare its cost against the
//! baseline algorithms — the paper's §4 pipeline in miniature.
//!
//! ```sh
//! cargo run --release --example movie_search
//! ```

use vaq::core::offline::baselines;
use vaq::core::offline::candidates::candidates_from_catalog;
use vaq::core::offline::tbclip::QueryTables;
use vaq::core::{ingest, rvaq, OnlineConfig, PaperScoring, RvaqOptions};
use vaq::datasets::movies::{self, MovieSpec};
use vaq::detect::{profiles, IouTracker, SimulatedActionRecognizer, SimulatedObjectDetector};
use vaq::storage::{ClipScoreTable, CostModel, TableKey, VideoCatalog};
use vaq::types::vocab;

fn main() -> vaq::Result<()> {
    // A scaled-down "Coffee and Cigarettes": smoking scenes with wine
    // glasses and cups, plus dense unrelated background content.
    let spec = MovieSpec {
        scale: 0.15,
        ..MovieSpec::default()
    };
    let set = movies::movie(
        movies::row("Coffee and Cigarettes").expect("known movie"),
        &spec,
        42,
    );
    let video = &set.videos[0];
    println!("movie: {} ({} clips)", set.id, video.script.num_clips());

    // --- Ingestion phase (once per video): every supported type.
    let objects = vocab::coco_objects();
    let actions = vocab::kinetics_actions();
    let detector = SimulatedObjectDetector::new(profiles::mask_rcnn(), objects.len() as u32, 42);
    let recognizer = SimulatedActionRecognizer::new(profiles::i3d(), actions.len() as u32, 42);
    let mut tracker = IouTracker::new(profiles::centertrack(), 42);
    let out = ingest(
        &video.script,
        video.name.clone(),
        &detector,
        &recognizer,
        &mut tracker,
        &OnlineConfig::svaqd(),
    )?;
    println!(
        "ingested {} object tables + {} action tables in {:.1} simulated minutes",
        out.object_rows.len(),
        out.action_rows.len(),
        out.stats.inference_ms() / 60_000.0
    );

    // Persist and reopen as an on-disk catalog (binary tables + JSON
    // manifest) — the repository a production system would query.
    let dir = std::env::temp_dir().join(format!("vaq-movie-search-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    out.write_catalog(&dir)?;
    let catalog = VideoCatalog::open(&dir, CostModel::DEFAULT)?;
    println!("catalog written to {}\n", dir.display());

    // --- Query phase: top-5 smoking scenes with wine glass and cup.
    let query = &set.query;
    let pq = candidates_from_catalog(&catalog, query)?;
    println!(
        "candidates P_q = P_a ⊗ P_o1 ⊗ P_o2: {} sequences over {} clips",
        pq.len(),
        pq.total_clips()
    );

    let action_table = catalog.table(TableKey::Action(query.action))?;
    let object_tables: Vec<_> = query
        .objects
        .iter()
        .map(|&o| catalog.table(TableKey::Object(o)))
        .collect::<vaq::Result<_>>()?;
    let tables = QueryTables {
        action: &action_table,
        objects: object_tables
            .iter()
            .map(|t| t as &dyn ClipScoreTable)
            .collect(),
    };

    let k = 5;
    let top = rvaq(&tables, &pq, &PaperScoring, &RvaqOptions::new(k));
    println!("\ntop-{k} sequences (RVAQ):");
    for (rank, (iv, score)) in top.sequences.iter().enumerate() {
        println!("  #{:<2} {iv}  score {score:.1}", rank + 1);
    }
    println!(
        "RVAQ cost: {} random accesses, {:.1} ms simulated I/O",
        top.stats.random,
        top.stats.simulated_ms()
    );

    // --- The same query through the baselines, for comparison.
    for (name, result) in [
        ("FA", baselines::fa(&tables, &pq, &PaperScoring, k)),
        (
            "RVAQ-noSkip",
            baselines::rvaq_noskip(&tables, &pq, &PaperScoring, k),
        ),
        (
            "Pq-Traverse",
            baselines::pq_traverse(&tables, &pq, &PaperScoring, k),
        ),
    ] {
        assert_eq!(
            result.sequences.first().map(|s| s.0),
            top.sequences.first().map(|s| s.0),
            "{name} disagrees with RVAQ"
        );
        println!(
            "{name:<12}: {} random accesses, {:.1} ms simulated I/O",
            result.stats.random,
            result.stats.simulated_ms()
        );
    }
    Ok(())
}
