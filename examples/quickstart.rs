//! Quickstart: script a synthetic video, run a streaming action+object
//! query with SVAQD, and compare the result against ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vaq::core::{OnlineConfig, OnlineEngine};
use vaq::detect::{profiles, SimulatedActionRecognizer, SimulatedObjectDetector};
use vaq::metrics::sequence_prf;
use vaq::types::vocab;
use vaq::video::{SceneScriptBuilder, VideoStream};
use vaq::{Query, VideoGeometry};

fn main() -> vaq::Result<()> {
    // Vocabularies of the deployed models: COCO objects, Kinetics actions.
    let objects = vocab::coco_objects();
    let actions = vocab::kinetics_actions();
    let person = objects.object("person")?;
    let car = objects.object("car")?;
    let jumping = actions.action("jumping")?;

    // A two-minute video (30 fps): a car parks in front of the camera
    // while someone jumps around it for 20 seconds.
    let geometry = VideoGeometry::PAPER_DEFAULT; // 10-frame shots, 5-shot clips
    let mut script = SceneScriptBuilder::new(geometry.frames_for_minutes(2), geometry);
    script.object_span(person, 0, 3600)?; // person on screen throughout
    script.object_span(car, 900, 2700)?; // car visible 30s..90s
    script.action_span(jumping, 1500, 2100)?; // jumping 50s..70s
    let script = script.build();

    // The query of the paper's §2 example: jumping while a car is visible.
    let query = Query::new(jumping, vec![car, person]);

    // Simulated Mask R-CNN + I3D with realistic noise.
    let detector = SimulatedObjectDetector::new(profiles::mask_rcnn(), objects.len() as u32, 7);
    let recognizer = SimulatedActionRecognizer::new(profiles::i3d(), actions.len() as u32, 7);

    // SVAQD: scan-statistics indicators with dynamically estimated
    // background probabilities.
    let engine = OnlineEngine::new(
        query.clone(),
        OnlineConfig::svaqd(),
        &geometry,
        &detector,
        &recognizer,
    )?;
    let result = engine.run(VideoStream::new(&script));

    let truth = script.ground_truth(&query, 0.5);
    let prf = sequence_prf(&result.sequences, &truth, 0.5);

    println!("query: jumping AND car AND person");
    println!("found sequences : {}", result.sequences);
    println!("ground truth    : {truth}");
    println!(
        "sequence F1     : {:.2} (precision {:.2}, recall {:.2})",
        prf.f1(),
        prf.precision(),
        prf.recall()
    );
    println!(
        "inference cost  : {:.1}s simulated ({} frames detected, {} shots recognized, \
         {} clips short-circuited)",
        result.stats.inference_ms() / 1000.0,
        result.stats.detector_frames,
        result.stats.recognizer_shots,
        result.stats.clips_short_circuited
    );
    Ok(())
}
