//! The declarative frontend: VAQ-SQL strings through the full
//! lexer → parser → planner → executor pipeline, in both the streaming and
//! the top-K form, including the footnote extensions (disjunction, spatial
//! relationships) and the caret diagnostics on errors.
//!
//! ```sh
//! cargo run --release --example sql_queries
//! ```

use vaq::core::{ingest, OnlineConfig, PaperScoring};
use vaq::detect::{profiles, IouTracker, SimulatedActionRecognizer, SimulatedObjectDetector};
use vaq::query::{execute_offline, execute_online, plan, OfflineSource, QueryOutput};
use vaq::storage::CostModel;
use vaq::types::vocab;
use vaq::video::SceneScriptBuilder;
use vaq::VideoGeometry;

fn main() -> vaq::Result<()> {
    let objects = vocab::coco_objects();
    let actions = vocab::kinetics_actions();

    // One scripted video: a person left of a car, jumping; later archery.
    let geometry = VideoGeometry::PAPER_DEFAULT;
    let mut b = SceneScriptBuilder::new(4000, geometry);
    b.object_instance(
        objects.object("car")?,
        200,
        1800,
        (0.8, 0.5),
        (0.2, 0.2),
        (0.0, 0.0),
    )?;
    b.object_instance(
        objects.object("person")?,
        200,
        1800,
        (0.2, 0.5),
        (0.15, 0.3),
        (0.0, 0.0),
    )?;
    b.action_span(actions.action("jumping")?, 500, 1500)?;
    b.action_span(actions.action("archery")?, 2500, 3500)?;
    let script = b.build();

    let detector = SimulatedObjectDetector::new(profiles::ideal_object(), objects.len() as u32, 1);
    let recognizer =
        SimulatedActionRecognizer::new(profiles::ideal_action(), actions.len() as u32, 1);

    // --- 1. The paper's streaming form.
    let sql = "SELECT MERGE(clipID) AS Sequence \
               FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, \
                     act USING ActionRecognizer) \
               WHERE act='jumping' AND obj.include('car', 'person')";
    run_online(sql, &script, &detector, &recognizer)?;

    // --- 2. Disjunction (footnote 4): jumping-with-car OR archery.
    let sql = "SELECT MERGE(clipID) FROM (PROCESS inputVideo PRODUCE clipID) \
               WHERE (act='jumping' AND obj.include('car')) OR act='archery'";
    run_online(sql, &script, &detector, &recognizer)?;

    // --- 3. Spatial relationship (footnote 2): person left of the car.
    let sql = "SELECT MERGE(clipID) FROM (PROCESS inputVideo PRODUCE clipID) \
               WHERE act='jumping' AND obj.include('person','car') \
               AND obj.relate('person', 'left_of', 'car')";
    run_online(sql, &script, &detector, &recognizer)?;

    // --- 4. The offline top-K form over an ingested repository.
    let mut tracker = IouTracker::new(profiles::ideal_tracker(), 1);
    let out = ingest(
        &script,
        "inputVideo",
        &detector,
        &recognizer,
        &mut tracker,
        &OnlineConfig::svaqd(),
    )?;
    let sql = "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) \
               FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, \
                     act USING ActionRecognizer) \
               WHERE act='jumping' AND obj.include('car', 'person') \
               ORDER BY RANK(act, obj) LIMIT 3";
    println!("\nsql> {sql}");
    let stmt = vaq::query::parse(sql)?;
    let p = plan(&stmt, &objects, &actions)?;
    let source = OfflineSource::Ingest(&out, CostModel::DEFAULT);
    match execute_offline(&p, &source, &PaperScoring)? {
        QueryOutput::Ranked(rows) => {
            for (rank, (iv, score)) in rows.iter().enumerate() {
                println!("  #{} {iv} score {score:.1}", rank + 1);
            }
        }
        other => println!("unexpected output {other:?}"),
    }

    // --- 5. Diagnostics: the planner reports unknown labels with context.
    let bad = "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) WHERE act='moonwalking'";
    println!("\nsql> {bad}");
    match vaq::query::parse(bad).and_then(|s| plan(&s, &objects, &actions)) {
        Err(e) => println!("  error: {e}"),
        Ok(_) => println!("  unexpectedly planned"),
    }
    let syntactically_broken = "SELECT MERGE(clipID FROM x";
    println!("sql> {syntactically_broken}");
    if let Err(e) = vaq::query::parse(syntactically_broken) {
        println!("  error: {e}");
    }
    Ok(())
}

fn run_online(
    sql: &str,
    script: &vaq::video::SceneScript,
    detector: &vaq::detect::SimulatedObjectDetector,
    recognizer: &vaq::detect::SimulatedActionRecognizer,
) -> vaq::Result<()> {
    let objects = vocab::coco_objects();
    let actions = vocab::kinetics_actions();
    println!("\nsql> {sql}");
    let stmt = vaq::query::parse(sql)?;
    let p = plan(&stmt, &objects, &actions)?;
    let (out, stats) = execute_online(&p, script, detector, recognizer, &OnlineConfig::svaqd())?;
    match out {
        QueryOutput::Sequences(seqs) => println!(
            "  sequences: {seqs}   ({} frames detected)",
            stats.detector_frames
        ),
        other => println!("  unexpected output {other:?}"),
    }
    Ok(())
}
