//! The paper's §3.3 motivating scenario: a surveillance camera whose
//! vehicle traffic spikes at rush hour. A static background probability
//! (SVAQ) is wrong for at least one phase of the day; SVAQD's kernel
//! estimator tracks the drift. This example streams the drift workload
//! clip by clip through both engines and reports how their critical
//! values and accuracy respond.
//!
//! ```sh
//! cargo run --release --example surveillance_stream
//! ```

use vaq::core::{OnlineConfig, OnlineEngine};
use vaq::datasets::drift::{surveillance, DriftSpec};
use vaq::metrics::sequence_prf;
use vaq::video::VideoStream;

fn main() -> vaq::Result<()> {
    let set = surveillance(&DriftSpec::default(), 42);
    let script = &set.videos[0].script;
    let query = &set.query;
    println!("workload: {}", set.description);
    println!(
        "stream: {} clips ({} minutes)\n",
        script.num_clips(),
        script.num_frames() / (60 * script.geometry().fps as u64)
    );

    let stack = vaq_bench_models();
    let (detector, recognizer) = (&stack.0, &stack.1);

    // SVAQ initialized for the quiet phase — mis-calibrated at rush hour.
    let mut svaq = OnlineEngine::new(
        query.clone(),
        OnlineConfig::svaq().with_p0(1e-5),
        script.geometry(),
        detector,
        recognizer,
    )?;
    let mut svaqd = OnlineEngine::new(
        query.clone(),
        OnlineConfig::svaqd().with_p0(1e-5),
        script.geometry(),
        detector,
        recognizer,
    )?;

    let phase = script.num_clips() / 3;
    println!("clip   phase  SVAQD p(car)   SVAQD k(car)  SVAQ k(car)");
    for (i, clip) in VideoStream::new(script).enumerate() {
        svaq.push_clip(&clip);
        svaqd.push_clip(&clip);
        if i as u64 % (phase / 2).max(1) == 0 {
            let (p_obj, _) = svaqd.background_estimates();
            let (kd, _) = svaqd.critical_values();
            let (ks, _) = svaq.critical_values();
            let phase_name = match i as u64 / phase {
                0 => "quiet",
                1 => "RUSH ",
                _ => "quiet",
            };
            println!(
                "{i:>5}  {phase_name}  {:>12.5}  {:>12}  {:>11}",
                p_obj[0], kd[0], ks[0]
            );
        }
    }

    let truth = script.ground_truth(query, 0.5);
    let f_svaq = sequence_prf(&svaq.sequences(), &truth, 0.5);
    let f_svaqd = sequence_prf(&svaqd.sequences(), &truth, 0.5);
    println!("\nground truth sequences: {}", truth.len());
    println!(
        "SVAQ  (p0=1e-5, static): {} sequences, F1 {:.2}",
        svaq.sequences().len(),
        f_svaq.f1()
    );
    println!(
        "SVAQD (adaptive)       : {} sequences, F1 {:.2}",
        svaqd.sequences().len(),
        f_svaqd.f1()
    );
    Ok(())
}

/// Simulated MaskRCNN + I3D over the built-in vocabularies.
fn vaq_bench_models() -> (
    vaq::detect::SimulatedObjectDetector,
    vaq::detect::SimulatedActionRecognizer,
) {
    use vaq::detect::{profiles, SimulatedActionRecognizer, SimulatedObjectDetector};
    use vaq::types::vocab;
    (
        SimulatedObjectDetector::new(
            profiles::mask_rcnn(),
            vocab::coco_objects().len() as u32,
            11,
        ),
        SimulatedActionRecognizer::new(profiles::i3d(), vocab::kinetics_actions().len() as u32, 11),
    )
}
